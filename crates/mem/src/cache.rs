//! A single set-associative cache (tag array + replacement state).
//!
//! This is a *timing* model: it tracks tags, validity, dirtiness and
//! replacement state, not data (the simulator's functional state lives in
//! `spear_exec::Memory`). Geometry and policy follow Table 2 of the paper:
//! L1D = 256 sets × 32-byte blocks × 4-way LRU, unified L2 = 1024 sets ×
//! 64-byte blocks × 4-way LRU.
//!
//! The line storage is structure-of-arrays: parallel `tags` / `flags` /
//! `stamps` vectors indexed by `set * assoc + way`. A set's tags are
//! contiguous, so the hit scan — the single hottest loop in the whole
//! simulator — touches one dense stride instead of striding over padded
//! per-line structs.

use serde::{Deserialize, Serialize};

/// `flags` bit 0: the line holds a valid tag.
const VALID: u8 = 1;
/// `flags` bit 1: the line has been written since it was filled.
const DIRTY: u8 = 2;

/// Cache shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Block (line) size in bytes (power of two).
    pub block_bytes: usize,
}

impl CacheGeometry {
    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.sets * self.assoc * self.block_bytes
    }

    /// Number of lines (`sets * assoc`).
    pub fn lines(&self) -> usize {
        self.sets * self.assoc
    }

    /// Table 2 L1 data cache: 256 sets, 32-byte block, 4-way.
    pub fn l1d_paper() -> CacheGeometry {
        CacheGeometry {
            sets: 256,
            assoc: 4,
            block_bytes: 32,
        }
    }

    /// Table 2 unified L2: 1024 sets, 64-byte block, 4-way.
    pub fn l2_paper() -> CacheGeometry {
        CacheGeometry {
            sets: 1024,
            assoc: 4,
            block_bytes: 64,
        }
    }

    /// L1 instruction cache (not specified in Table 2; a conventional
    /// 16 KiB 2-way configuration, documented in DESIGN.md).
    pub fn l1i_default() -> CacheGeometry {
        CacheGeometry {
            sets: 256,
            assoc: 2,
            block_bytes: 32,
        }
    }
}

/// Replacement policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplPolicy {
    /// Least-recently-used (the paper's policy).
    Lru,
    /// First-in-first-out (ablation).
    Fifo,
    /// Pseudo-random (xorshift; ablation).
    Random,
}

/// Result of one cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessResult {
    /// True on a tag hit.
    pub hit: bool,
    /// True if the fill evicted a dirty line (write-back traffic).
    pub writeback: bool,
    /// Block-aligned address of an evicted line, if any.
    pub evicted: Option<u64>,
    /// Index of the line that served the access (`set * assoc + way`):
    /// the hit line, or the just-filled victim on a miss. Stable for the
    /// lifetime of the cache, so callers can keep per-line side tables.
    pub line_idx: usize,
}

/// Per-cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Read accesses.
    pub reads: u64,
    /// Write accesses.
    pub writes: u64,
    /// Read misses.
    pub read_misses: u64,
    /// Write misses.
    pub write_misses: u64,
    /// Dirty evictions.
    pub writebacks: u64,
}

impl CacheStats {
    /// All accesses.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// All misses.
    pub fn misses(&self) -> u64 {
        self.read_misses + self.write_misses
    }

    /// Miss ratio over all accesses (0 when idle).
    pub fn miss_ratio(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            self.misses() as f64 / a as f64
        }
    }
}

/// Serializable image of a cache's tag array and replacement state, used
/// by the checkpointing subsystem (`spear-campaign`) to carry *warm*
/// cache contents across a save/restore boundary. Statistics are not
/// part of the snapshot: a restored cache starts counting from zero.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheSnapshot {
    /// Geometry fingerprint (`sets`, `assoc`, `block_bytes`) — restore
    /// refuses a snapshot taken under a different shape.
    pub sets: u64,
    /// Ways per set at capture time.
    pub assoc: u64,
    /// Block size in bytes at capture time.
    pub block_bytes: u64,
    /// Per-line tags, set-major (`set * assoc + way`).
    pub tags: Vec<u64>,
    /// Per-line flag bytes: bit 0 = valid, bit 1 = dirty.
    pub flags: Vec<u8>,
    /// Per-line replacement stamps (LRU touch / FIFO fill order).
    pub stamps: Vec<u64>,
    /// Global access tick, so relative LRU ordering survives restore.
    pub tick: u64,
    /// Replacement RNG state (Random policy determinism across restore).
    pub rng: u64,
}

/// The cache proper. Write-back, write-allocate.
#[derive(Clone, Debug)]
pub struct Cache {
    geom: CacheGeometry,
    policy: ReplPolicy,
    /// Per-line tags, set-major (`set * assoc + way`).
    tags: Vec<u64>,
    /// Per-line [`VALID`] | [`DIRTY`] bits, same indexing.
    flags: Vec<u8>,
    /// Per-line replacement stamps (LRU: last touch; FIFO: fill).
    stamps: Vec<u64>,
    tick: u64,
    rng: u64,
    /// Access/miss counters.
    pub stats: CacheStats,
    block_shift: u32,
    set_mask: u64,
}

impl Cache {
    /// Build an empty cache. Panics unless sets and block size are powers
    /// of two and associativity is nonzero.
    pub fn new(geom: CacheGeometry, policy: ReplPolicy) -> Cache {
        assert!(geom.sets.is_power_of_two(), "sets must be a power of two");
        assert!(
            geom.block_bytes.is_power_of_two(),
            "block size must be a power of two"
        );
        assert!(geom.assoc > 0, "associativity must be nonzero");
        let n = geom.lines();
        Cache {
            geom,
            policy,
            tags: vec![0; n],
            flags: vec![0; n],
            stamps: vec![0; n],
            tick: 0,
            rng: 0x9E3779B97F4A7C15,
            stats: CacheStats::default(),
            block_shift: geom.block_bytes.trailing_zeros(),
            set_mask: (geom.sets - 1) as u64,
        }
    }

    /// Geometry this cache was built with.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// log2 of the block size, for shift-based block math in callers.
    pub fn block_shift(&self) -> u32 {
        self.block_shift
    }

    #[inline]
    fn set_of(&self, addr: u64) -> usize {
        ((addr >> self.block_shift) & self.set_mask) as usize
    }

    #[inline]
    fn tag_of(&self, addr: u64) -> u64 {
        addr >> self.block_shift >> self.geom.sets.trailing_zeros()
    }

    /// Block-aligned address for a (set, tag) pair.
    fn block_addr(&self, set: usize, tag: u64) -> u64 {
        ((tag << self.geom.sets.trailing_zeros()) | set as u64) << self.block_shift
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// Access `addr`; on a miss the line is filled (write-allocate).
    /// Write hits and write fills mark the line dirty.
    pub fn access(&mut self, addr: u64, is_write: bool) -> AccessResult {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set * self.geom.assoc;
        let end = base + self.geom.assoc;

        if is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }

        // Hit path: scan the set's ways in order.
        for i in base..end {
            if self.flags[i] & VALID != 0 && self.tags[i] == tag {
                if matches!(self.policy, ReplPolicy::Lru) {
                    self.stamps[i] = tick;
                }
                self.flags[i] |= (is_write as u8) << 1;
                return AccessResult {
                    hit: true,
                    writeback: false,
                    evicted: None,
                    line_idx: i,
                };
            }
        }

        // Miss: pick a victim — the first invalid way, else per policy
        // (first-of-minimum stamp for LRU/FIFO, xorshift for Random).
        if is_write {
            self.stats.write_misses += 1;
        } else {
            self.stats.read_misses += 1;
        }
        let victim = match (base..end).find(|&i| self.flags[i] & VALID == 0) {
            Some(i) => i,
            None => match self.policy {
                ReplPolicy::Lru | ReplPolicy::Fifo => {
                    let mut best = base;
                    for i in base + 1..end {
                        if self.stamps[i] < self.stamps[best] {
                            best = i;
                        }
                    }
                    best
                }
                ReplPolicy::Random => {
                    let assoc = self.geom.assoc;
                    base + (self.next_rand() % assoc as u64) as usize
                }
            },
        };
        let writeback = self.flags[victim] & (VALID | DIRTY) == VALID | DIRTY;
        if writeback {
            self.stats.writebacks += 1;
        }
        let evicted =
            (self.flags[victim] & VALID != 0).then(|| self.block_addr(set, self.tags[victim]));
        self.tags[victim] = tag;
        self.flags[victim] = VALID | ((is_write as u8) << 1);
        self.stamps[victim] = tick;
        AccessResult {
            hit: false,
            writeback,
            evicted,
            line_idx: victim,
        }
    }

    /// Block-aligned addresses of every valid line, set-major order
    /// (diagnostics: inclusion audits, fuzz-harness structure checks).
    pub fn valid_block_addrs(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for set in 0..self.geom.sets {
            let base = set * self.geom.assoc;
            for way in 0..self.geom.assoc {
                let i = base + way;
                if self.flags[i] & VALID != 0 {
                    out.push(self.block_addr(set, self.tags[i]));
                }
            }
        }
        out
    }

    /// Check structural well-formedness of the tag store: no set may hold
    /// the same tag in two valid ways (the hit path scans ways in order
    /// and would silently shadow the duplicate), and no invalid line may
    /// carry a dirty bit. Returns the first violation found.
    pub fn check_structure(&self) -> Result<(), String> {
        for set in 0..self.geom.sets {
            let base = set * self.geom.assoc;
            for way in 0..self.geom.assoc {
                let i = base + way;
                if self.flags[i] & VALID == 0 {
                    if self.flags[i] & DIRTY != 0 {
                        return Err(format!("set {set} way {way}: dirty bit on an invalid line"));
                    }
                    continue;
                }
                for later in way + 1..self.geom.assoc {
                    let j = base + later;
                    if self.flags[j] & VALID != 0 && self.tags[j] == self.tags[i] {
                        return Err(format!(
                            "set {set}: tag {:#x} valid in both way {way} and way {later}",
                            self.tags[i]
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Would `addr` hit right now? Does not disturb replacement state or
    /// statistics (used by tests and by the profiler's peek).
    pub fn probe(&self, addr: u64) -> bool {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set * self.geom.assoc;
        (base..base + self.geom.assoc).any(|i| self.flags[i] & VALID != 0 && self.tags[i] == tag)
    }

    /// Invalidate everything (keeps statistics).
    pub fn flush(&mut self) {
        self.tags.fill(0);
        self.flags.fill(0);
        self.stamps.fill(0);
    }

    /// Capture the tag array and replacement state (not the statistics).
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            sets: self.geom.sets as u64,
            assoc: self.geom.assoc as u64,
            block_bytes: self.geom.block_bytes as u64,
            tags: self.tags.clone(),
            flags: self.flags.clone(),
            stamps: self.stamps.clone(),
            tick: self.tick,
            rng: self.rng,
        }
    }

    /// Load a snapshot captured from a cache of identical geometry,
    /// replacing current contents. Statistics are reset so a restored
    /// simulation counts only its own accesses.
    ///
    /// Returns an error naming the mismatch if the snapshot's geometry
    /// fingerprint disagrees with this cache.
    pub fn restore(&mut self, snap: &CacheSnapshot) -> Result<(), String> {
        let want = (
            self.geom.sets as u64,
            self.geom.assoc as u64,
            self.geom.block_bytes as u64,
        );
        let got = (snap.sets, snap.assoc, snap.block_bytes);
        if want != got {
            return Err(format!(
                "cache snapshot geometry {got:?} != cache geometry {want:?}"
            ));
        }
        let n = self.tags.len();
        if snap.tags.len() != n || snap.flags.len() != n || snap.stamps.len() != n {
            return Err(format!(
                "cache snapshot has {} lines, cache has {n}",
                snap.tags.len()
            ));
        }
        self.tags.clone_from(&snap.tags);
        self.flags.clone_from(&snap.flags);
        self.stamps.clone_from(&snap.stamps);
        self.tick = snap.tick;
        self.rng = snap.rng;
        self.stats = CacheStats::default();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        Cache::new(
            CacheGeometry {
                sets: 4,
                assoc: 2,
                block_bytes: 16,
            },
            ReplPolicy::Lru,
        )
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = small();
        assert!(!c.access(0x100, false).hit);
        assert!(c.access(0x100, false).hit);
        assert!(c.access(0x10F, false).hit, "same block");
        assert!(!c.access(0x110, false).hit, "next block");
        assert_eq!(c.stats.reads, 4);
        assert_eq!(c.stats.read_misses, 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Set 0 holds blocks whose addr = tag * 64 (4 sets * 16B).
        c.access(0, false); // tag 0
        c.access(64, false); // tag 1 — set full
        c.access(0, false); // touch tag 0, tag 1 is now LRU
        let r = c.access(128, false); // tag 2 evicts tag 1
        assert_eq!(r.evicted, Some(64));
        assert!(c.probe(0));
        assert!(!c.probe(64));
        assert!(c.probe(128));
    }

    #[test]
    fn fifo_ignores_touches() {
        let mut c = Cache::new(
            CacheGeometry {
                sets: 4,
                assoc: 2,
                block_bytes: 16,
            },
            ReplPolicy::Fifo,
        );
        c.access(0, false);
        c.access(64, false);
        c.access(0, false); // touch does not refresh FIFO stamp
        let r = c.access(128, false);
        assert_eq!(r.evicted, Some(0), "oldest fill evicted despite touch");
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small();
        c.access(0, true); // fill dirty
        c.access(64, false);
        let r = c.access(128, false); // evicts one of them
                                      // tag 0 is LRU (written first, never touched again)
        assert!(r.writeback);
        assert_eq!(c.stats.writebacks, 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small();
        c.access(0, false); // clean fill
        c.access(0, true); // dirty it
        c.access(64, false);
        c.access(128, false); // evict tag 0
        assert_eq!(c.stats.writebacks, 1);
    }

    #[test]
    fn probe_does_not_disturb() {
        let mut c = small();
        c.access(0, false);
        c.access(64, false);
        assert!(c.probe(64));
        let before = c.stats;
        assert!(c.probe(0));
        assert_eq!(c.stats, before);
    }

    #[test]
    fn flush_invalidates() {
        let mut c = small();
        c.access(0, false);
        c.flush();
        assert!(!c.probe(0));
        assert!(!c.access(0, false).hit);
    }

    #[test]
    fn paper_geometries() {
        assert_eq!(CacheGeometry::l1d_paper().capacity(), 32 * 1024);
        assert_eq!(CacheGeometry::l2_paper().capacity(), 256 * 1024);
    }

    #[test]
    fn line_idx_is_stable_between_hit_and_fill() {
        let mut c = small();
        let fill = c.access(0x100, false);
        assert!(!fill.hit);
        let hit = c.access(0x100, false);
        assert!(hit.hit);
        assert_eq!(hit.line_idx, fill.line_idx, "same line serves both");
        assert!(hit.line_idx < c.geometry().lines());
        // A conflicting fill that evicts the line reuses its index.
        c.access(0x100 + 64, false);
        let evicting = c.access(0x100 + 128, false);
        assert_eq!(evicting.evicted, Some(0x100), "LRU line evicted");
        assert_eq!(evicting.line_idx, fill.line_idx, "victim reuses the slot");
    }

    #[test]
    fn snapshot_restore_preserves_contents_and_lru_order() {
        let mut c = small();
        c.access(0, false);
        c.access(64, true); // dirty
        c.access(0, false); // tag 1 now LRU in set 0
        let snap = c.snapshot();

        let mut fresh = small();
        fresh.restore(&snap).expect("matching geometry");
        assert!(fresh.probe(0) && fresh.probe(64));
        assert_eq!(fresh.stats, CacheStats::default(), "stats reset on restore");

        // LRU order carried over: filling a third tag evicts tag 1, and
        // because tag 1 was dirty the eviction is a writeback.
        let r = fresh.access(128, false);
        assert_eq!(r.evicted, Some(64));
        assert!(r.writeback);

        // The restored cache behaves identically to the original.
        let r2 = c.access(128, false);
        assert_eq!(r2.evicted, Some(64));
    }

    #[test]
    fn restore_rejects_geometry_mismatch() {
        let c = small();
        let snap = c.snapshot();
        let mut other = Cache::new(
            CacheGeometry {
                sets: 8,
                assoc: 2,
                block_bytes: 16,
            },
            ReplPolicy::Lru,
        );
        assert!(other.restore(&snap).is_err());
    }

    #[test]
    fn random_policy_fills_all_ways_before_evicting() {
        let mut c = Cache::new(
            CacheGeometry {
                sets: 1,
                assoc: 4,
                block_bytes: 16,
            },
            ReplPolicy::Random,
        );
        for i in 0..4 {
            assert!(!c.access(i * 16, false).hit);
        }
        for i in 0..4 {
            assert!(c.access(i * 16, false).hit, "all four resident");
        }
        c.access(4 * 16, false);
        let resident = (0..5).filter(|i| c.probe(i * 16)).count();
        assert_eq!(resident, 4, "exactly one block was evicted");
    }
}
