//! # spear-mem — the cache hierarchy model
//!
//! Timing model of the paper's memory system (Table 2): split L1
//! instruction/data caches over a unified L2 over main memory, LRU
//! set-associative, write-back write-allocate. Provides the per-static-PC
//! miss accounting the SPEAR profiler uses to identify delinquent loads and
//! the latency knobs the Figure 9 sweep varies.

pub mod cache;
pub mod hier;
pub mod prefetch;

pub use cache::{AccessResult, Cache, CacheGeometry, CacheSnapshot, CacheStats, ReplPolicy};
pub use hier::{
    AccessKind, FillRecord, HierConfig, HierSnapshot, Hierarchy, LatencyConfig, MemAccess,
    PcMissCounts, PrefetchCounts, ServedBy,
};
pub use prefetch::{StrideConfig, StridePrefetcher};
