//! The two-level memory hierarchy: L1I + L1D over a unified L2 over main
//! memory, with the access latencies of Table 2 (and the Figure 9 latency
//! sweep knobs).

use crate::cache::{Cache, CacheGeometry, CacheStats, ReplPolicy};
use crate::prefetch::{StrideConfig, StridePrefetcher};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Access latencies, in CPU cycles.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyConfig {
    /// L1 (data or instruction) hit latency.
    pub l1_hit: u32,
    /// Unified L2 hit latency.
    pub l2_hit: u32,
    /// Main-memory access latency.
    pub memory: u32,
}

impl LatencyConfig {
    /// Table 2: L1 = 1, L2 = 12, memory = 120.
    pub fn paper() -> LatencyConfig {
        LatencyConfig {
            l1_hit: 1,
            l2_hit: 12,
            memory: 120,
        }
    }

    /// One point of the Figure 9 sweep: `memory` ∈ {40,80,120,160,200}
    /// paired with `l2 = memory / 10`.
    pub fn sweep_point(memory: u32) -> LatencyConfig {
        LatencyConfig {
            l1_hit: 1,
            l2_hit: memory / 10,
            memory,
        }
    }
}

/// What kind of data access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// Where an access was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServedBy {
    /// L1 hit.
    L1,
    /// L1 miss, L2 hit.
    L2,
    /// Missed both caches.
    Memory,
}

/// One hierarchy access, with the total latency and where it was served.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemAccess {
    /// Total latency in cycles.
    pub latency: u32,
    /// Level that supplied the line.
    pub served_by: ServedBy,
}

/// Full hierarchy configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierConfig {
    /// L1 data cache geometry.
    pub l1d: CacheGeometry,
    /// L1 instruction cache geometry.
    pub l1i: CacheGeometry,
    /// Unified L2 geometry.
    pub l2: CacheGeometry,
    /// Replacement policy (applies to all levels).
    pub policy: ReplPolicy,
    /// Latencies.
    pub latency: LatencyConfig,
    /// Maximum outstanding L1D line fills (MSHRs). A miss issued while
    /// all MSHRs are busy queues behind the oldest outstanding fill
    /// (latency extends until an MSHR frees). `None` = unlimited, the
    /// default (`sim-outorder`'s default infinite-bandwidth memory).
    pub mshrs: Option<usize>,
    /// Attach a conventional per-PC stride prefetcher to the L1D (the
    /// "traditional prefetching" baseline of the paper's motivation;
    /// off by default and in every paper configuration).
    pub stride_prefetch: Option<StrideConfig>,
}

impl HierConfig {
    /// The paper's configuration (Table 2).
    pub fn paper() -> HierConfig {
        HierConfig {
            l1d: CacheGeometry::l1d_paper(),
            l1i: CacheGeometry::l1i_default(),
            l2: CacheGeometry::l2_paper(),
            policy: ReplPolicy::Lru,
            latency: LatencyConfig::paper(),
            mshrs: None,
            stride_prefetch: None,
        }
    }
}

/// Per-static-PC L1D miss accounting, used by the profiler to identify
/// delinquent loads and by the evaluation to report miss reductions.
#[derive(Clone, Debug, Default)]
pub struct PcMissCounts {
    map: HashMap<u32, u64>,
}

impl PcMissCounts {
    /// Record one miss at `pc`.
    pub fn record(&mut self, pc: u32) {
        *self.map.entry(pc).or_insert(0) += 1;
    }

    /// Misses recorded at `pc`.
    pub fn get(&self, pc: u32) -> u64 {
        self.map.get(&pc).copied().unwrap_or(0)
    }

    /// All (pc, misses) pairs, descending by miss count then ascending PC
    /// (stable for reporting).
    pub fn ranked(&self) -> Vec<(u32, u64)> {
        let mut v: Vec<_> = self.map.iter().map(|(&pc, &n)| (pc, n)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Total misses across all PCs.
    pub fn total(&self) -> u64 {
        self.map.values().sum()
    }
}

/// Per-owner prefetch effectiveness counters, keyed by the static PC of
/// the delinquent load a p-thread targets. Every p-thread load access is
/// eventually classified into exactly one of the timely/late/useless
/// buckets (after [`Hierarchy::drain_pending_prefetches`]), so
/// `timely + late + useless == pthread_loads`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrefetchCounts {
    /// P-thread load accesses issued to the data cache.
    pub pthread_loads: u64,
    /// Prefetched lines the main thread hit after the fill completed.
    pub timely: u64,
    /// Prefetched lines the main thread touched while still in flight.
    pub late: u64,
    /// Prefetches that never helped: redundant (line already present),
    /// evicted or displaced before use, or unclaimed at run end.
    pub useless: u64,
}

/// One cache-line fill, as logged when the fill log is enabled (the
/// `--trace-file` pipeline-event hook).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FillRecord {
    /// Byte address of the filled block.
    pub block_addr: u64,
    /// Total fill latency in cycles (including any MSHR queueing).
    pub latency: u32,
    /// True if the p-thread (a prefetch) requested the fill.
    pub pthread: bool,
}

/// The memory hierarchy.
///
/// Loads and stores go through [`Hierarchy::access_data`]; instruction
/// fetches through [`Hierarchy::access_inst`]. Misses propagate to the next
/// level; the returned latency is the sum along the walk. Dirty evictions
/// from L1D are installed in L2 (write-back), modelled as state changes
/// only (no extra latency, matching `sim-outorder`'s default bus model).
#[derive(Clone, Debug)]
pub struct Hierarchy {
    /// L1 data cache.
    pub l1d: Cache,
    /// L1 instruction cache.
    pub l1i: Cache,
    /// Unified L2.
    pub l2: Cache,
    /// Latency configuration.
    pub latency: LatencyConfig,
    /// L1D misses per static load/store PC.
    pub pc_misses: PcMissCounts,
    /// L1D misses incurred by p-thread accesses (prefetches).
    pub pthread_misses: u64,
    /// L1D accesses issued by the p-thread.
    pub pthread_accesses: u64,
    /// MSHR limit, from the configuration.
    mshr_limit: Option<usize>,
    /// In-flight line fills as `(L1D block address, arrival cycle)`.
    ///
    /// A tag array alone would let a second access to a just-missed block
    /// hit instantly; real hardware makes it wait on the outstanding fill
    /// (an MSHR merge). Accesses to a pending block are charged the
    /// *remaining* fill latency — this is also what makes a prefetch that
    /// is still in flight partially (rather than fully) hide the miss.
    ///
    /// Completed fills are retired eagerly on every new fill, so the
    /// steady-state occupancy is the number of genuinely outstanding
    /// lines (bounded by the MSHR count when one is configured) and a
    /// linear scan beats hashing.
    pending_fills: Vec<(u64, u64)>,
    /// Accesses that merged into an outstanding fill (delayed hits).
    pub delayed_hits: u64,
    /// Per-L1D-line prefetch ownership, indexed like the cache's line
    /// array (`set * assoc + way`). `Some(owner)` marks a line whose most
    /// recent fill was requested by the p-thread and that the main thread
    /// has not touched yet; `owner` is the static d-load PC whose
    /// p-thread issued the prefetch (`None` for p-thread stores, which
    /// warm the cache but are not counted in the per-d-load
    /// load-effectiveness profiles). Ownership follows the line: an
    /// eviction classifies the prefetch useless on the spot, so the
    /// table is fixed-size instead of growing with unique blocks.
    pthread_owner: Vec<Option<Option<u32>>>,
    /// The d-load PC owning p-thread accesses issued right now (set by
    /// the core per issued p-thread instruction; falls back to the
    /// accessing PC when unset).
    prefetch_owner: Option<u32>,
    /// Per-d-load prefetch effectiveness counters.
    dload_profiles: HashMap<u32, PrefetchCounts>,
    /// Fill log for pipeline-event tracing (`None` = disabled, the
    /// default: one branch per fill).
    fill_log: Option<Vec<FillRecord>>,
    /// Main-thread accesses that hit a line the p-thread prefetched
    /// (fully — an L1 hit) — the "useful prefetch" count.
    pub useful_prefetches: u64,
    /// Main-thread accesses that merged into a still-in-flight p-thread
    /// fill (a partially useful prefetch).
    pub late_prefetches: u64,
    /// Fills delayed because all MSHRs were busy.
    pub mshr_stalls: u64,
    /// The optional stride prefetcher.
    stride: Option<StridePrefetcher>,
    /// Lines filled by the stride prefetcher.
    pub hw_prefetch_fills: u64,
}

impl Hierarchy {
    /// Build an empty hierarchy.
    pub fn new(cfg: HierConfig) -> Hierarchy {
        Hierarchy {
            l1d: Cache::new(cfg.l1d, cfg.policy),
            l1i: Cache::new(cfg.l1i, cfg.policy),
            l2: Cache::new(cfg.l2, cfg.policy),
            latency: cfg.latency,
            mshr_limit: cfg.mshrs,
            pc_misses: PcMissCounts::default(),
            pthread_misses: 0,
            pthread_accesses: 0,
            pending_fills: Vec::new(),
            delayed_hits: 0,
            pthread_owner: vec![None; cfg.l1d.lines()],
            prefetch_owner: None,
            dload_profiles: HashMap::new(),
            fill_log: None,
            useful_prefetches: 0,
            late_prefetches: 0,
            mshr_stalls: 0,
            stride: cfg.stride_prefetch.map(StridePrefetcher::new),
            hw_prefetch_fills: 0,
        }
    }

    /// Fill a line on behalf of the hardware prefetcher: installs the tag
    /// in L1D (and L2 on the way) without touching the demand-miss
    /// statistics and with the usual in-flight-fill bookkeeping.
    fn hw_prefetch(&mut self, addr: u64, now: u64) {
        if self.l1d.probe(addr) {
            return;
        }
        let r1 = self.l1d.access(addr, false);
        debug_assert!(!r1.hit);
        // The fill may displace a still-unclaimed p-thread line.
        if let Some(prev) = self.pthread_owner[r1.line_idx].take() {
            self.classify_useless(prev);
        }
        if r1.writeback {
            if let Some(victim) = r1.evicted {
                self.l2.access(victim, true);
            }
        }
        let r2 = self.l2.access(addr, false);
        let raw = if r2.hit {
            self.latency.l1_hit + self.latency.l2_hit
        } else {
            self.latency.l1_hit + self.latency.l2_hit + self.latency.memory
        };
        self.note_fill(addr, now, raw, false);
        self.hw_prefetch_fills += 1;
        // Demand-stat hygiene: back out the access/miss this probe added.
        self.l1d.stats.reads -= 1;
        self.l1d.stats.read_misses -= 1;
        self.l2.stats.reads -= 1;
        if !r2.hit {
            self.l2.stats.read_misses -= 1;
        }
    }

    fn block_of(&self, addr: u64) -> u64 {
        addr >> self.l1d.block_shift()
    }

    /// Remaining latency if `addr`'s block has an outstanding fill.
    fn pending_latency(&mut self, addr: u64, now: u64) -> Option<u32> {
        let block = self.block_of(addr);
        let i = self.pending_fills.iter().position(|&(b, _)| b == block)?;
        let fill_at = self.pending_fills[i].1;
        if fill_at > now {
            Some((fill_at - now) as u32)
        } else {
            self.pending_fills.swap_remove(i);
            None
        }
    }

    /// Fills currently outstanding (completed fills retire eagerly, so
    /// this is bounded by the MSHR count when one is configured).
    pub fn in_flight_fills(&self) -> usize {
        self.pending_fills.len()
    }

    fn note_fill(&mut self, addr: u64, now: u64, latency: u32, pthread: bool) -> u32 {
        // Retire every completed fill before admitting a new one: the
        // list only ever holds genuinely in-flight lines.
        self.pending_fills.retain(|&(_, t)| t > now);
        // Finite MSHRs: if every miss register is busy, this fill cannot
        // start until the soonest outstanding fill retires its MSHR.
        let mut start = now;
        if let Some(limit) = self.mshr_limit {
            if self.pending_fills.len() >= limit {
                let mut soonest: Vec<u64> = self.pending_fills.iter().map(|&(_, t)| t).collect();
                soonest.sort_unstable();
                start = soonest[soonest.len() - limit];
                self.mshr_stalls += 1;
            }
        }
        let done = start + latency as u64;
        let block = self.block_of(addr);
        // A block can re-miss while its earlier fill is still listed
        // (the line was evicted mid-flight): overwrite, as a map would.
        match self.pending_fills.iter_mut().find(|e| e.0 == block) {
            Some(e) => e.1 = done,
            None => self.pending_fills.push((block, done)),
        }
        let total = (done - now) as u32;
        if let Some(log) = &mut self.fill_log {
            let block_bytes = self.l1d.geometry().block_bytes as u64;
            log.push(FillRecord {
                block_addr: block * block_bytes,
                latency: total,
                pthread,
            });
        }
        total
    }

    /// Record every subsequent cache-line fill for pipeline tracing.
    pub fn enable_fill_log(&mut self) {
        self.fill_log = Some(Vec::new());
    }

    /// Take the fills logged since the last drain (empty when the log is
    /// disabled).
    pub fn drain_fills(&mut self) -> Vec<FillRecord> {
        self.fill_log
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Attribute subsequent p-thread accesses to the p-thread targeting
    /// the d-load at `dload_pc` (the core sets this per issued p-thread
    /// memory operation). When unset, p-thread accesses fall back to
    /// their own PC as the profile key.
    pub fn set_prefetch_owner(&mut self, dload_pc: Option<u32>) {
        self.prefetch_owner = dload_pc;
    }

    /// Prefetch effectiveness counters for the p-thread targeting
    /// `dload_pc` (zeros if it never issued a load).
    pub fn dload_profile(&self, dload_pc: u32) -> PrefetchCounts {
        self.dload_profiles
            .get(&dload_pc)
            .copied()
            .unwrap_or_default()
    }

    /// All per-d-load profiles, sorted by d-load PC.
    pub fn dload_profiles(&self) -> Vec<(u32, PrefetchCounts)> {
        let mut v: Vec<_> = self
            .dload_profiles
            .iter()
            .map(|(&pc, &c)| (pc, c))
            .collect();
        v.sort_unstable_by_key(|&(pc, _)| pc);
        v
    }

    /// Pre-size the per-d-load profile map with one zeroed row per
    /// expected key (the attached p-thread table's d-load PCs).
    ///
    /// Seeding is invisible to reads — [`Hierarchy::dload_profile`]
    /// already answers zeros for an absent PC — but it puts the map at
    /// its steady-state key set up front, so the hot classification
    /// paths never rehash and a campaign cell does not re-grow the map
    /// PC by PC after every restore ([`Hierarchy::restore`] zeroes the
    /// seeded rows in place instead of dropping them).
    pub fn seed_dload_profiles(&mut self, pcs: impl IntoIterator<Item = u32>) {
        for pc in pcs {
            self.dload_profiles.entry(pc).or_default();
        }
    }

    fn classify_useless(&mut self, owner: Option<u32>) {
        if let Some(pc) = owner {
            self.dload_profiles.entry(pc).or_default().useless += 1;
        }
    }

    /// Classify every still-pending p-thread prefetch as useless: the
    /// main thread never claimed it. Call once at the end of a run so the
    /// per-d-load partition `timely + late + useless == pthread_loads`
    /// closes.
    pub fn drain_pending_prefetches(&mut self) {
        for i in 0..self.pthread_owner.len() {
            if let Some(owner) = self.pthread_owner[i].take() {
                self.classify_useless(owner);
            }
        }
    }

    /// A data access from thread `is_pthread` at static `pc`, issued at
    /// cycle `now` (used to merge accesses into outstanding line fills).
    pub fn access_data(
        &mut self,
        addr: u64,
        kind: AccessKind,
        pc: u32,
        is_pthread: bool,
        now: u64,
    ) -> MemAccess {
        let is_write = kind == AccessKind::Write;
        // Conventional stride prefetching observes main-thread loads.
        if !is_pthread && !is_write && self.stride.is_some() {
            let targets = self.stride.as_mut().expect("checked").observe(pc, addr);
            for t in targets {
                self.hw_prefetch(t, now);
            }
        }
        let r1 = self.l1d.access(addr, is_write);
        if is_pthread {
            self.pthread_accesses += 1;
        }
        // Per-d-load effectiveness: each p-thread *load* is attributed to
        // the d-load its episode targets and will be classified exactly
        // once (timely / late / useless).
        let owner = if is_pthread && !is_write {
            let o = self.prefetch_owner.unwrap_or(pc);
            self.dload_profiles.entry(o).or_default().pthread_loads += 1;
            Some(o)
        } else {
            None
        };
        if r1.hit {
            if is_pthread {
                // The line is already present (or already in flight):
                // this prefetch brought nothing new — redundant.
                self.classify_useless(owner);
            } else if let Some(prev) = self.pthread_owner[r1.line_idx].take() {
                // Prefetch-effectiveness accounting: the first
                // main-thread touch of a p-thread-fetched line is a
                // useful (or, if the fill is still in flight, late)
                // prefetch.
                let block = self.block_of(addr);
                let in_flight = self
                    .pending_fills
                    .iter()
                    .any(|&(b, t)| b == block && t > now);
                if in_flight {
                    self.late_prefetches += 1;
                    if let Some(pc) = prev {
                        self.dload_profiles.entry(pc).or_default().late += 1;
                    }
                } else {
                    self.useful_prefetches += 1;
                    if let Some(pc) = prev {
                        self.dload_profiles.entry(pc).or_default().timely += 1;
                    }
                }
            }
            // Tag hit, but the line may still be in flight.
            if let Some(remaining) = self.pending_latency(addr, now) {
                self.delayed_hits += 1;
                return MemAccess {
                    latency: remaining.max(self.latency.l1_hit),
                    served_by: ServedBy::L1,
                };
            }
            return MemAccess {
                latency: self.latency.l1_hit,
                served_by: ServedBy::L1,
            };
        }
        if is_pthread {
            self.pthread_misses += 1;
        } else {
            self.pc_misses.record(pc);
        }
        // The fill displaces whatever the victim line held: if that was
        // a still-unclaimed p-thread prefetch, it can no longer help.
        if let Some(prev) = self.pthread_owner[r1.line_idx].take() {
            self.classify_useless(prev);
        }
        // Write-back of the evicted dirty line into L2.
        if r1.writeback {
            if let Some(victim) = r1.evicted {
                self.l2.access(victim, true);
            }
        }
        let r2 = self.l2.access(addr, false);
        let (raw_latency, served_by) = if r2.hit {
            (self.latency.l1_hit + self.latency.l2_hit, ServedBy::L2)
        } else {
            (
                self.latency.l1_hit + self.latency.l2_hit + self.latency.memory,
                ServedBy::Memory,
            )
        };
        let latency = self.note_fill(addr, now, raw_latency, is_pthread);
        if is_pthread {
            // Mark the freshly filled line as an unclaimed prefetch; the
            // main thread's first touch (or the line's eviction, or the
            // end of the run) will classify it.
            self.pthread_owner[r1.line_idx] = Some(owner);
        }
        MemAccess { latency, served_by }
    }

    /// An instruction fetch of the block containing `addr`.
    pub fn access_inst(&mut self, addr: u64) -> MemAccess {
        let r1 = self.l1i.access(addr, false);
        if r1.hit {
            return MemAccess {
                latency: self.latency.l1_hit,
                served_by: ServedBy::L1,
            };
        }
        let r2 = self.l2.access(addr, false);
        if r2.hit {
            MemAccess {
                latency: self.latency.l1_hit + self.latency.l2_hit,
                served_by: ServedBy::L2,
            }
        } else {
            MemAccess {
                latency: self.latency.l1_hit + self.latency.l2_hit + self.latency.memory,
                served_by: ServedBy::Memory,
            }
        }
    }

    /// L1D statistics snapshot.
    pub fn l1d_stats(&self) -> CacheStats {
        self.l1d.stats
    }

    /// Check tag-store well-formedness of all three caches (no duplicate
    /// valid tags within a set, no dirty-but-invalid lines). Returns the
    /// first violation found, prefixed with the offending cache's name.
    pub fn check_structure(&self) -> Result<(), String> {
        self.l1d
            .check_structure()
            .map_err(|e| format!("l1d: {e}"))?;
        self.l1i
            .check_structure()
            .map_err(|e| format!("l1i: {e}"))?;
        self.l2.check_structure().map_err(|e| format!("l2: {e}"))?;
        Ok(())
    }

    /// Count L1 lines (data + instruction) whose block is absent from L2.
    ///
    /// This is a *diagnostic*, not an invariant: the model is non-
    /// inclusive by construction. L2 sees only L1-miss traffic, so a line
    /// that is hot in L1 ages out of L2's LRU without a back-invalidation,
    /// legitimately leaving L1-valid blocks with no L2 copy. The fuzz
    /// harness reports this count rather than asserting zero.
    pub fn inclusion_violations(&self) -> usize {
        self.l1d
            .valid_block_addrs()
            .into_iter()
            .chain(self.l1i.valid_block_addrs())
            .filter(|&b| !self.l2.probe(b))
            .count()
    }

    /// Capture the warm contents of all three caches (tags, validity,
    /// dirtiness, replacement order). In-flight fills, prefetch ownership
    /// maps and statistics are *not* captured: a snapshot represents a
    /// quiesced hierarchy, as produced by functional warming, not a
    /// mid-flight one.
    pub fn snapshot(&self) -> HierSnapshot {
        HierSnapshot {
            l1d: self.l1d.snapshot(),
            l1i: self.l1i.snapshot(),
            l2: self.l2.snapshot(),
        }
    }

    /// Load warm cache contents captured under an identical geometry,
    /// resetting statistics, pending fills and prefetch bookkeeping so
    /// the restored hierarchy observes only its own accesses.
    pub fn restore(&mut self, snap: &HierSnapshot) -> Result<(), String> {
        self.l1d
            .restore(&snap.l1d)
            .map_err(|e| format!("l1d: {e}"))?;
        self.l1i
            .restore(&snap.l1i)
            .map_err(|e| format!("l1i: {e}"))?;
        self.l2.restore(&snap.l2).map_err(|e| format!("l2: {e}"))?;
        self.pc_misses = PcMissCounts::default();
        self.pthread_misses = 0;
        self.pthread_accesses = 0;
        self.pending_fills.clear();
        self.delayed_hits = 0;
        self.pthread_owner.fill(None);
        self.prefetch_owner = None;
        // Zero the profile rows in place: the key set (seeded from the
        // p-thread table) survives the restore, so the next cell starts
        // from a full-size map instead of re-growing it per unique PC.
        for counts in self.dload_profiles.values_mut() {
            *counts = PrefetchCounts::default();
        }
        self.useful_prefetches = 0;
        self.late_prefetches = 0;
        self.mshr_stalls = 0;
        self.hw_prefetch_fills = 0;
        Ok(())
    }
}

/// Serializable image of the warm contents of a [`Hierarchy`]'s three
/// caches. See [`Hierarchy::snapshot`] for what is (and is not) captured.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierSnapshot {
    /// L1 data cache contents.
    pub l1d: crate::cache::CacheSnapshot,
    /// L1 instruction cache contents.
    pub l1i: crate::cache::CacheSnapshot,
    /// Unified L2 contents.
    pub l2: crate::cache::CacheSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hier() -> Hierarchy {
        Hierarchy::new(HierConfig::paper())
    }

    #[test]
    fn cold_miss_costs_full_walk() {
        let mut h = hier();
        let a = h.access_data(0x4000, AccessKind::Read, 7, false, 0);
        assert_eq!(a.served_by, ServedBy::Memory);
        assert_eq!(a.latency, 1 + 12 + 120);
        assert_eq!(h.pc_misses.get(7), 1);
    }

    #[test]
    fn second_access_merges_into_outstanding_fill() {
        let mut h = hier();
        h.access_data(0x4000, AccessKind::Read, 7, false, 0);
        // Same block, same cycle: the line is still in flight — the access
        // waits out the remaining fill latency (MSHR merge).
        let a = h.access_data(0x4008, AccessKind::Read, 7, false, 0);
        assert_eq!(a.served_by, ServedBy::L1);
        assert_eq!(a.latency, 133, "delayed hit pays the remaining latency");
        assert_eq!(h.delayed_hits, 1);
        assert_eq!(h.pc_misses.get(7), 1, "a merge is not a new miss");
    }

    #[test]
    fn second_access_hits_l1_after_fill_arrives() {
        let mut h = hier();
        h.access_data(0x4000, AccessKind::Read, 7, false, 0);
        let a = h.access_data(0x4008, AccessKind::Read, 7, false, 200);
        assert_eq!(a.served_by, ServedBy::L1);
        assert_eq!(a.latency, 1);
    }

    #[test]
    fn partial_fill_charges_remaining_cycles() {
        let mut h = hier();
        h.access_data(0x4000, AccessKind::Read, 7, false, 0); // fills at 133
        let a = h.access_data(0x4000, AccessKind::Read, 7, false, 100);
        assert_eq!(a.latency, 33, "33 cycles left on the fill");
    }

    #[test]
    fn l1_evict_l2_hit_path() {
        let mut h = hier();
        // Fill one L1D set (4 ways) with conflicting blocks: L1D stride for
        // the same set is sets*block = 256*32 = 8 KiB.
        for i in 0..5u64 {
            h.access_data(i * 8192, AccessKind::Read, 0, false, 0);
        }
        // Block 0 was evicted from L1 but still sits in L2
        // (L2 same-set stride is 1024*64 = 64 KiB, so no L2 conflicts).
        let a = h.access_data(0, AccessKind::Read, 0, false, 0);
        assert_eq!(a.served_by, ServedBy::L2);
        assert_eq!(a.latency, 1 + 12);
    }

    #[test]
    fn pthread_prefetch_warms_l1_for_main_thread() {
        let mut h = hier();
        let p = h.access_data(0x9000, AccessKind::Read, 3, true, 0);
        assert_eq!(p.served_by, ServedBy::Memory);
        assert_eq!(h.pthread_misses, 1);
        assert_eq!(
            h.pc_misses.total(),
            0,
            "p-thread misses are not main misses"
        );
        let m = h.access_data(0x9000, AccessKind::Read, 3, false, 0);
        assert_eq!(m.served_by, ServedBy::L1, "prefetched line hits");
    }

    #[test]
    fn writeback_installs_into_l2() {
        let mut h = hier();
        h.access_data(0, AccessKind::Write, 0, false, 0); // dirty in L1
        for i in 1..5u64 {
            h.access_data(i * 8192, AccessKind::Read, 0, false, 0); // evict block 0
        }
        assert_eq!(h.l1d.stats.writebacks, 1);
        // Block 0 must now hit in L2.
        let a = h.access_data(0, AccessKind::Read, 0, false, 0);
        assert_eq!(a.served_by, ServedBy::L2);
    }

    #[test]
    fn inst_fetches_use_l1i_then_l2() {
        let mut h = hier();
        let a = h.access_inst(0x100);
        assert_eq!(a.served_by, ServedBy::Memory);
        let b = h.access_inst(0x100);
        assert_eq!(b.served_by, ServedBy::L1);
        assert_eq!(h.l1d.stats.accesses(), 0, "instructions never touch L1D");
    }

    #[test]
    fn sweep_latencies() {
        let l = LatencyConfig::sweep_point(200);
        assert_eq!(l.l2_hit, 20);
        let l = LatencyConfig::sweep_point(40);
        assert_eq!(l.l2_hit, 4);
    }

    #[test]
    fn useful_and_late_prefetches_counted() {
        let mut h = hier();
        // P-thread fetches a line at t=0 (fill at 133).
        h.access_data(0x9000, AccessKind::Read, 3, true, 0);
        // Main touches it while in flight → late prefetch.
        let a = h.access_data(0x9000, AccessKind::Read, 3, false, 50);
        assert_eq!(h.late_prefetches, 1);
        assert!(a.latency > 1 && a.latency < 133);
        // P-thread fetches another line; main touches after the fill.
        h.access_data(0xA000, AccessKind::Read, 3, true, 0);
        let b = h.access_data(0xA000, AccessKind::Read, 3, false, 500);
        assert_eq!(h.useful_prefetches, 1);
        assert_eq!(b.latency, 1);
        // Second main touch is no longer counted (the line was claimed).
        h.access_data(0xA000, AccessKind::Read, 3, false, 501);
        assert_eq!(h.useful_prefetches, 1);
    }

    #[test]
    fn finite_mshrs_serialize_excess_misses() {
        let mut cfg = HierConfig::paper();
        cfg.mshrs = Some(2);
        let mut h = Hierarchy::new(cfg);
        // Three distinct-block misses in the same cycle: the third must
        // wait for the first fill's MSHR (completes at 133).
        let a = h.access_data(0x10000, AccessKind::Read, 0, false, 0);
        let b = h.access_data(0x20000, AccessKind::Read, 0, false, 0);
        let c = h.access_data(0x30000, AccessKind::Read, 0, false, 0);
        assert_eq!(a.latency, 133);
        assert_eq!(b.latency, 133);
        assert_eq!(c.latency, 266, "third miss queues behind an MSHR");
        assert_eq!(h.mshr_stalls, 1);
    }

    #[test]
    fn completed_fills_retire_eagerly() {
        let mut h = hier();
        // A long stream of distinct-block misses, each issued long after
        // the previous fill landed: occupancy must not grow with the
        // number of unique blocks touched.
        for i in 0..1000u64 {
            h.access_data(0x100000 + i * 4096, AccessKind::Read, 0, false, i * 1000);
        }
        assert!(h.in_flight_fills() <= 1, "completed fills are retired");
    }

    #[test]
    fn seeded_profiles_read_as_zeros_and_survive_restore() {
        let mut h = hier();
        h.seed_dload_profiles([7, 9]);
        assert_eq!(h.dload_profile(7), PrefetchCounts::default());
        // Accumulate into a seeded row, then restore from a snapshot:
        // the counts reset but the key set stays in place.
        h.set_prefetch_owner(Some(7));
        h.access_data(0x4000, AccessKind::Read, 7, true, 0);
        assert_eq!(h.dload_profile(7).pthread_loads, 1);
        let snap = h.snapshot();
        h.restore(&snap).unwrap();
        assert_eq!(h.dload_profile(7), PrefetchCounts::default());
        assert_eq!(
            h.dload_profiles()
                .iter()
                .map(|&(pc, _)| pc)
                .collect::<Vec<_>>(),
            [7, 9],
            "restore zeroes the seeded rows instead of dropping them"
        );
    }

    #[test]
    fn eviction_classifies_prefetch_without_drain() {
        let mut h = hier();
        h.set_prefetch_owner(Some(9));
        h.access_data(0x0, AccessKind::Read, 3, true, 0);
        // Main-thread conflicts (5 blocks into the 4-way set) evict the
        // prefetched line; the eviction alone settles its classification.
        for i in 1..6u64 {
            h.access_data(i * 8192, AccessKind::Read, 0, false, 1000);
        }
        let p = h.dload_profile(9);
        assert_eq!(p.useless, 1, "classified at eviction, no drain needed");
    }

    #[test]
    fn unlimited_mshrs_never_stall() {
        let mut h = hier();
        for i in 0..64u64 {
            h.access_data(0x40000 + i * 4096, AccessKind::Read, 0, false, 0);
        }
        assert_eq!(h.mshr_stalls, 0);
    }

    #[test]
    fn main_thread_fills_are_not_prefetches() {
        let mut h = hier();
        h.access_data(0xB000, AccessKind::Read, 3, false, 0);
        h.access_data(0xB000, AccessKind::Read, 3, false, 500);
        assert_eq!(h.useful_prefetches, 0);
        assert_eq!(h.late_prefetches, 0);
    }

    #[test]
    fn dload_profile_partitions_every_pthread_load() {
        let mut h = hier();
        h.set_prefetch_owner(Some(77));
        // Timely: prefetched at 0, main touches at 500.
        h.access_data(0x9000, AccessKind::Read, 3, true, 0);
        h.access_data(0x9000, AccessKind::Read, 3, false, 500);
        // Late: prefetched at 600, main touches mid-flight.
        h.access_data(0xA000, AccessKind::Read, 3, true, 600);
        h.access_data(0xA000, AccessKind::Read, 3, false, 650);
        // Redundant: a second prefetch of an already-present line.
        h.access_data(0x9000, AccessKind::Read, 3, true, 900);
        // Never claimed: prefetched, main never touches it.
        h.access_data(0xB000, AccessKind::Read, 3, true, 900);
        h.drain_pending_prefetches();
        let p = h.dload_profile(77);
        assert_eq!(p.pthread_loads, 4);
        assert_eq!(p.timely, 1);
        assert_eq!(p.late, 1);
        assert_eq!(p.useless, 2, "redundant + unclaimed");
        assert_eq!(p.timely + p.late + p.useless, p.pthread_loads);
        // The global counters agree with the profile.
        assert_eq!(h.useful_prefetches, 1);
        assert_eq!(h.late_prefetches, 1);
    }

    #[test]
    fn evicted_prefetch_counts_as_useless() {
        let mut h = hier();
        h.set_prefetch_owner(Some(5));
        // Prefetch a block, then let main-thread conflicts evict it
        // (5 distinct blocks mapping to the same 4-way L1D set).
        h.access_data(0x0, AccessKind::Read, 3, true, 0);
        for i in 1..6u64 {
            h.access_data(i * 8192, AccessKind::Read, 0, false, 1000 + i);
        }
        // Main touches block 0 after eviction: a demand miss, and the
        // prefetch is classified useless on that path.
        h.access_data(0x0, AccessKind::Read, 0, false, 5000);
        let p = h.dload_profile(5);
        assert_eq!(p.pthread_loads, 1);
        assert_eq!(p.useless, 1);
        assert_eq!(p.timely + p.late + p.useless, p.pthread_loads);
    }

    #[test]
    fn unowned_pthread_access_falls_back_to_its_own_pc() {
        let mut h = hier();
        h.access_data(0x9000, AccessKind::Read, 3, true, 0);
        h.drain_pending_prefetches();
        let p = h.dload_profile(3);
        assert_eq!(p.pthread_loads, 1);
        assert_eq!(p.useless, 1);
    }

    #[test]
    fn fill_log_records_demand_and_prefetch_fills() {
        let mut h = hier();
        assert!(h.drain_fills().is_empty(), "disabled log drains empty");
        h.enable_fill_log();
        h.access_data(0x4000, AccessKind::Read, 7, false, 0);
        h.access_data(0x9000, AccessKind::Read, 3, true, 0);
        // An L1 hit must not log a fill.
        h.access_data(0x4000, AccessKind::Read, 7, false, 500);
        let fills = h.drain_fills();
        assert_eq!(fills.len(), 2);
        assert!(!fills[0].pthread);
        assert!(fills[1].pthread);
        assert_eq!(fills[0].latency, 133);
        assert_eq!(fills[0].block_addr, 0x4000);
        assert!(h.drain_fills().is_empty(), "drain takes the backlog");
    }

    #[test]
    fn hierarchy_snapshot_restore_reproduces_hit_pattern() {
        let mut h = hier();
        // Warm a few data blocks and an instruction block.
        for i in 0..8u64 {
            h.access_data(0x4000 + i * 32, AccessKind::Read, 7, false, 0);
        }
        h.access_inst(0x100);
        let snap = h.snapshot();

        let mut fresh = hier();
        fresh.restore(&snap).expect("same geometry");
        // Warm lines hit in the restored hierarchy; nothing is in flight
        // (the snapshot is quiesced), so hits cost exactly the L1 latency.
        let a = fresh.access_data(0x4000, AccessKind::Read, 7, false, 0);
        assert_eq!(a.served_by, ServedBy::L1);
        assert_eq!(a.latency, 1);
        let b = fresh.access_inst(0x100);
        assert_eq!(b.served_by, ServedBy::L1);
        // Statistics were reset: only the one access above is counted.
        assert_eq!(fresh.l1d.stats.accesses(), 1);
        assert_eq!(fresh.pc_misses.total(), 0);
    }

    #[test]
    fn ranked_pc_misses_sorted_desc() {
        let mut p = PcMissCounts::default();
        for _ in 0..3 {
            p.record(10);
        }
        p.record(5);
        assert_eq!(p.ranked(), vec![(10, 3), (5, 1)]);
        assert_eq!(p.total(), 4);
    }
}
