//! Failing-case minimization.
//!
//! A ddmin-style shrinker over [`ProgramSpec`]s: first remove segment
//! chunks (halves, then quarters, down to single segments), then shrink
//! each surviving segment's numeric parameters toward zero, then simplify
//! the seed. A candidate is kept only if the oracle still fails — the
//! minimized spec is guaranteed to reproduce *a* failure, though the
//! specific divergence detail may shift as the program shrinks.
//!
//! Every candidate evaluation is a full oracle run, so the total number
//! of evaluations is bounded by `budget`.

use crate::gen::{ProgramSpec, Segment};
use crate::oracle::{self, Failure};

/// Outcome of a shrink: the smallest still-failing spec found, the
/// failure it produces, and how many oracle evaluations were spent.
#[derive(Clone, Debug)]
pub struct Shrunk {
    /// The minimized spec.
    pub spec: ProgramSpec,
    /// The failure the minimized spec reproduces.
    pub failure: Failure,
    /// Oracle evaluations consumed.
    pub evals: usize,
    /// Golden dynamic instruction count of the minimized program.
    pub golden_icount: u64,
    /// Static instruction count of the minimized program.
    pub static_insts: u64,
}

/// Minimize `spec`, which must currently fail the oracle (`failure` is
/// its observed divergence). Runs at most `budget` oracle evaluations.
pub fn shrink(spec: &ProgramSpec, failure: Failure, budget: usize) -> Shrunk {
    let mut best = spec.clone();
    let mut best_failure = failure;
    let mut evals = 0usize;

    // Returns the new failure if the candidate still fails.
    let still_fails = |cand: &ProgramSpec, evals: &mut usize| -> Option<Failure> {
        if *evals >= budget {
            return None;
        }
        *evals += 1;
        oracle::check(cand).err()
    };

    loop {
        let before = (best.segments.clone(), best.seed);

        // Phase 1: segment-list reduction, coarse to fine.
        let mut chunk = best.segments.len().div_ceil(2).max(1);
        while chunk >= 1 && best.segments.len() > 1 {
            let mut start = 0;
            while start < best.segments.len() && best.segments.len() > 1 {
                let mut cand = best.clone();
                let end = (start + chunk).min(cand.segments.len());
                cand.segments.drain(start..end);
                if cand.segments.is_empty() {
                    start += chunk;
                    continue;
                }
                if let Some(f) = still_fails(&cand, &mut evals) {
                    best = cand;
                    best_failure = f;
                    // Retry the same position: the list shifted left.
                } else {
                    start += chunk;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }

        // Phase 2: per-segment parameter shrinking. Halving descends
        // fast; the decrement polish matters because parameters fold
        // into ranges with `%`, so the failing region need not be
        // downward-closed under halving.
        for i in 0..best.segments.len() {
            for param in [0u8, 1] {
                loop {
                    let Segment { a, b, .. } = best.segments[i];
                    let cur = if param == 0 { a } else { b };
                    if cur == 0 {
                        break;
                    }
                    let mut stepped = false;
                    for next in [cur / 2, cur - 1] {
                        let mut cand = best.clone();
                        if param == 0 {
                            cand.segments[i].a = next;
                        } else {
                            cand.segments[i].b = next;
                        }
                        if let Some(f) = still_fails(&cand, &mut evals) {
                            best = cand;
                            best_failure = f;
                            stepped = true;
                            break;
                        }
                    }
                    if !stepped {
                        break;
                    }
                }
            }
        }

        // Phase 3: seed simplification.
        for simple in [0u64, 1] {
            if best.seed != simple {
                let mut cand = best.clone();
                cand.seed = simple;
                if let Some(f) = still_fails(&cand, &mut evals) {
                    best = cand;
                    best_failure = f;
                }
            }
        }

        let after = (best.segments.clone(), best.seed);
        if before == after || evals >= budget {
            break;
        }
    }

    // The final spec fails by construction; measure both size metrics
    // for reporting (static program length and dynamic golden length).
    let golden_icount = golden_len(&best);
    let static_insts = best.render().insts.len() as u64;
    Shrunk {
        spec: best,
        failure: best_failure,
        evals,
        golden_icount,
        static_insts,
    }
}

/// Dynamic instruction count of a spec's rendered program on the golden
/// interpreter.
pub fn golden_len(spec: &ProgramSpec) -> u64 {
    let p = spec.render();
    let mut i = spear_exec::Interp::new(&p);
    i.run(20_000_000).expect("golden");
    i.icount
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::SegKind;

    /// Shrinking against a synthetic predicate (not the real oracle):
    /// exercise the list/param phases cheaply by shrinking with budget 0
    /// — the spec must come back unchanged.
    #[test]
    fn zero_budget_returns_input() {
        let spec = ProgramSpec {
            seed: 5,
            segments: vec![
                Segment {
                    kind: SegKind::AluChain,
                    a: 100,
                    b: 200,
                },
                Segment {
                    kind: SegKind::Diamond,
                    a: 3,
                    b: 4,
                },
            ],
        };
        let f = Failure {
            config: "x".into(),
            kind: "y".into(),
            detail: "z".into(),
        };
        let out = shrink(&spec, f, 0);
        assert_eq!(out.spec, spec);
        assert_eq!(out.evals, 0);
    }
}
