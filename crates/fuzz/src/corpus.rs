//! The regression corpus: minimized reproducers on disk.
//!
//! Every failure the fuzzer finds is shrunk and written to the corpus
//! directory (`tests/corpus/` in this repo) as a small JSON document
//! carrying the [`ProgramSpec`] plus the failure it reproduced when it
//! was found. Replaying the corpus re-runs the full oracle on every
//! entry; since corpus entries describe *fixed* bugs, replay must pass —
//! a failing replay means a regression resurrected an old bug.
//!
//! The `found_*` fields are historical: they record what broke when the
//! reproducer was minted, for triage. Replay does not require the same
//! divergence to reappear — any divergence on a corpus program is a
//! regression.

use crate::gen::ProgramSpec;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// One corpus entry.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Reproducer {
    /// The fuzzer base seed and iteration that found it ("seed42/iter17"),
    /// or "handwritten" for curated entries.
    pub origin: String,
    /// Configuration that diverged when found (historical).
    pub found_config: String,
    /// Property that broke when found (historical).
    pub found_kind: String,
    /// Divergence detail when found (historical).
    pub found_detail: String,
    /// Golden dynamic instruction count of the minimized program.
    pub golden_icount: u64,
    /// Static instruction count of the minimized program.
    pub static_insts: u64,
    /// The minimized program spec.
    pub spec: ProgramSpec,
}

/// Stable fingerprint of a spec (FNV-1a over its JSON), used as the
/// corpus file name so identical reproducers dedupe.
pub fn fingerprint(spec: &ProgramSpec) -> u64 {
    let json = serde::json::to_string(spec);
    let mut h = 0xcbf29ce484222325u64;
    for b in json.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Write `repro` into `dir` (created if absent) as
/// `repro-<fingerprint>.json`. Returns the path written.
pub fn save(dir: &Path, repro: &Reproducer) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("repro-{:016x}.json", fingerprint(&repro.spec)));
    std::fs::write(&path, serde::json::to_string_pretty(repro))?;
    Ok(path)
}

/// Load every `*.json` reproducer in `dir`, sorted by file name for
/// deterministic replay order. A missing directory is an empty corpus;
/// an unreadable or unparsable entry is an error (corpus files are
/// checked in — they must stay valid).
pub fn load_dir(dir: &Path) -> Result<Vec<(PathBuf, Reproducer)>, String> {
    if !dir.exists() {
        return Ok(Vec::new());
    }
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let repro: Reproducer = serde::json::from_str(&text)
            .map_err(|e| format!("{}: bad reproducer: {e:?}", path.display()))?;
        out.push((path, repro));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{SegKind, Segment};

    fn sample() -> Reproducer {
        Reproducer {
            origin: "seed42/iter7".into(),
            found_config: "SPEAR-128/ctx2".into(),
            found_kind: "memory".into(),
            found_detail: "first diff at byte 0x40".into(),
            golden_icount: 33,
            static_insts: 19,
            spec: ProgramSpec {
                seed: 1,
                segments: vec![Segment {
                    kind: SegKind::Gather,
                    a: 8,
                    b: 0,
                }],
            },
        }
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("spear-fuzz-corpus-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let r = sample();
        let path = save(&dir, &r).expect("save");
        assert!(path
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .starts_with("repro-"));
        let loaded = load_dir(&dir).expect("load");
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].1, r);
        // Saving the identical spec dedupes to the same file.
        let path2 = save(&dir, &r).expect("save again");
        assert_eq!(path, path2);
        assert_eq!(load_dir(&dir).expect("load").len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_dir_is_empty_corpus() {
        let dir = Path::new("/nonexistent/spear-fuzz-nowhere");
        assert!(load_dir(dir).expect("empty").is_empty());
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let r = sample();
        let f1 = fingerprint(&r.spec);
        assert_eq!(f1, fingerprint(&r.spec));
        let mut other = r.spec.clone();
        other.seed ^= 1;
        assert_ne!(f1, fingerprint(&other));
    }
}
