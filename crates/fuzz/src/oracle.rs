//! The architectural-equivalence oracle.
//!
//! One fuzz case is judged by running its rendered program through the
//! reference interpreter (the golden model) and through the cycle-level
//! core under a configuration matrix — baseline vs SPEAR front end, 2 vs
//! 4 hardware contexts, bimodal vs TAGE branch prediction, the three
//! Figure-6 machine models, and sampled vs
//! full simulation — and demanding byte-identical architectural results
//! everywhere: committed register file, final memory image, and retired
//! instruction count. Each cycle-level run additionally has to satisfy
//! the structural invariants (exact CPI-stack slot accounting, the
//! timely/late/useless prefetch partition, cache tag-store
//! well-formedness), and one configuration round-trips a mid-run
//! checkpoint through its JSON encoding. Finally, every generated
//! program is recorded into the `.spt` trace format and replayed
//! trace-driven on the baseline machine, which must reproduce both the
//! golden memory image and the program-driven run's exact statistics.
//!
//! Cache *inclusion* is deliberately a diagnostic, not an assertion: the
//! model is non-inclusive by construction (L2 only sees L1-miss traffic,
//! so lines hot in L1 age out of L2 without back-invalidation). The
//! oracle reports the violation count so a future inclusive-hierarchy
//! change can promote it.

use crate::gen::ProgramSpec;
use spear_campaign::{capture_checkpoints_at, capture_interval_checkpoints, Checkpoint, Warmer};
use spear_compiler::{CompilerConfig, SpearCompiler};
use spear_cpu::{Core, CoreConfig, CoreStats, RunExit, TraceSource};
use spear_exec::{Interp, Memory, RegFile};
use spear_isa::{Program, SpearBinary};

/// Instruction budget for the golden interpreter (generated programs are
/// a few thousand dynamic instructions; anything near this bound is a
/// generator bug).
const GOLDEN_BUDGET: u64 = 20_000_000;
/// Cycle budget per cycle-level run.
const CYCLE_BUDGET: u64 = 50_000_000;

/// One oracle violation: which configuration diverged, what property
/// broke, and the details needed to triage it.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Configuration label, e.g. `SPEAR-128/ctx2` or
    /// `SPEAR-128/ctx2/checkpoint-roundtrip`.
    pub config: String,
    /// Property class: `exit`, `committed`, `registers`, `memory`,
    /// `checksum`, `invariants`, `cache-structure`, `checkpoint`,
    /// `sampled`, `sim-error`, `compile`.
    pub kind: String,
    /// Human-readable specifics (expected vs got).
    pub detail: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}: {}", self.config, self.kind, self.detail)
    }
}

/// What a passing oracle run observed (for summaries).
#[derive(Clone, Debug, Default)]
pub struct OracleReport {
    /// Golden dynamic instruction count.
    pub golden_icount: u64,
    /// Cycle-level configurations that ran and matched.
    pub configs_checked: usize,
    /// Pre-execution episodes completed across all SPEAR runs (a health
    /// signal: the generator should keep producing programs that actually
    /// exercise the SPEAR machinery).
    pub episodes_completed: u64,
    /// Total L1-valid-but-absent-from-L2 lines observed at halt across
    /// runs (diagnostic only; the hierarchy is non-inclusive by design).
    pub inclusion_violations: u64,
}

/// The golden model's final architectural state.
struct Golden {
    icount: u64,
    regs: RegFile,
    mem: Memory,
    checksum: u64,
}

fn golden(p: &Program) -> Golden {
    let mut i = Interp::new(p);
    i.run(GOLDEN_BUDGET).expect("golden execution");
    assert!(i.halted, "generated program must halt within budget");
    Golden {
        icount: i.icount,
        regs: i.regs.clone(),
        mem: i.mem.clone(),
        checksum: i.state_checksum(),
    }
}

/// The cycle-level configuration matrix: the three Figure-6 machines,
/// each with 2 and with 4 hardware contexts, plus a TAGE-predicted
/// variant per machine. The predictor axis must be architecturally
/// invisible — a mispredicting (or better-predicting) front end changes
/// cycles, never committed state.
fn matrix() -> Vec<(String, CoreConfig)> {
    let mut out = Vec::new();
    for cfg in [
        CoreConfig::baseline(),
        CoreConfig::spear(128),
        CoreConfig::spear(256),
    ] {
        for ctxs in [2usize, 4] {
            let mut c = cfg.clone();
            c.num_contexts = ctxs;
            out.push((format!("{}/ctx{}", c.model_name(), ctxs), c));
        }
        let mut c = cfg.clone();
        c.bpred = c
            .bpred
            .with_spec("tage")
            .expect("default tage spec is valid");
        out.push((format!("{}/ctx2/tage", c.model_name()), c));
    }
    out
}

fn first_byte_diff(a: &[u8], b: &[u8]) -> String {
    if a.len() != b.len() {
        return format!("length {} vs {}", a.len(), b.len());
    }
    match a.iter().zip(b).position(|(x, y)| x != y) {
        Some(i) => format!(
            "first diff at byte {:#x}: {:#04x} vs {:#04x}",
            i, a[i], b[i]
        ),
        None => "identical".to_string(),
    }
}

fn first_reg_diff(a: &RegFile, b: &RegFile) -> String {
    let (ab, bb) = (a.to_bits(), b.to_bits());
    match ab.iter().zip(bb.iter()).position(|(x, y)| x != y) {
        Some(i) => format!(
            "first diff at reg index {}: {:#x} vs {:#x}",
            i, ab[i], bb[i]
        ),
        None => "identical".to_string(),
    }
}

/// Check one core's final state against the golden model and its stats
/// against the structural invariants. Returns the episodes/inclusion
/// tallies for the report.
fn check_final_state(
    label: &str,
    core: &Core<'_>,
    stats: &CoreStats,
    exit: RunExit,
    g: &Golden,
    report: &mut OracleReport,
) -> Result<(), Failure> {
    let fail = |kind: &str, detail: String| Failure {
        config: label.to_string(),
        kind: kind.to_string(),
        detail,
    };
    if exit != RunExit::Halted {
        return Err(fail("exit", format!("expected Halted, got {exit:?}")));
    }
    if stats.committed != g.icount {
        return Err(fail(
            "committed",
            format!(
                "retired {} instructions, golden {}",
                stats.committed, g.icount
            ),
        ));
    }
    if core.commit_regs() != &g.regs {
        return Err(fail(
            "registers",
            first_reg_diff(core.commit_regs(), &g.regs),
        ));
    }
    if core.memory() != &g.mem {
        return Err(fail(
            "memory",
            first_byte_diff(core.memory().as_bytes(), g.mem.as_bytes()),
        ));
    }
    if core.state_checksum() != g.checksum {
        return Err(fail(
            "checksum",
            format!("{:#x} vs golden {:#x}", core.state_checksum(), g.checksum),
        ));
    }
    stats
        .check_invariants(8)
        .map_err(|e| fail("invariants", e))?;
    core.hierarchy()
        .check_structure()
        .map_err(|e| fail("cache-structure", e))?;
    report.configs_checked += 1;
    report.episodes_completed += stats.preexec_completed;
    report.inclusion_violations += core.hierarchy().inclusion_violations() as u64;
    Ok(())
}

/// Run the full oracle over one spec. `Ok` means every configuration
/// matched the golden model and satisfied every invariant.
pub fn check(spec: &ProgramSpec) -> Result<OracleReport, Failure> {
    let p = spec.render();
    let g = golden(&p);
    let mut report = OracleReport {
        golden_icount: g.icount,
        ..Default::default()
    };

    // One binary for the whole matrix: the compiled table rides along and
    // the baseline front end simply ignores it, so every configuration
    // retires the identical instruction stream. Aggressive slicer
    // thresholds give even small programs real p-threads.
    let mut ccfg = CompilerConfig::default();
    ccfg.slicer.dload_min_misses = 4;
    ccfg.slicer.dload_miss_fraction = 0.0;
    let binary: SpearBinary = match SpearCompiler::new(ccfg).compile(&p) {
        Ok((b, _)) => b,
        Err(e) => {
            return Err(Failure {
                config: "compiler".to_string(),
                kind: "compile".to_string(),
                detail: format!("{e:?}"),
            })
        }
    };

    for (label, cfg) in matrix() {
        let mut core = Core::new(&binary, cfg);
        let res = core.run(CYCLE_BUDGET, u64::MAX).map_err(|e| Failure {
            config: label.clone(),
            kind: "sim-error".to_string(),
            detail: e.to_string(),
        })?;
        check_final_state(&label, &core, &res.stats, res.exit, &g, &mut report)?;
    }

    check_checkpoint_roundtrip(&p, &binary, &g, &mut report)?;
    check_sampled_vs_full(&p, &binary, &g, &mut report)?;
    check_simpoint_vs_full(&p, &binary, &g, &mut report)?;
    check_trace_replay(&binary, &g, &mut report)?;
    Ok(report)
}

/// Record/replay oracle: every generated program is recorded into the
/// `.spt` trace format and replayed through a trace-driven baseline
/// core, which must reproduce the golden memory image and retired count
/// — and, because baseline timing never reads register *values*, the
/// exact statistics of the program-driven baseline run. Any codec bug,
/// cursor slip or wrong-path synthesis difference shows up here as a
/// stats or divergence failure.
fn check_trace_replay(
    binary: &SpearBinary,
    g: &Golden,
    report: &mut OracleReport,
) -> Result<(), Failure> {
    let label = "superscalar/trace-replay";
    let fail = |kind: &str, detail: String| Failure {
        config: label.to_string(),
        kind: kind.to_string(),
        detail,
    };
    let (bytes, rstats) =
        spear_trace::record(binary, GOLDEN_BUDGET).map_err(|e| fail("trace", e))?;
    if !rstats.halted {
        return Err(fail(
            "trace",
            "recording hit the instruction budget before halt".to_string(),
        ));
    }
    if rstats.insts != g.icount {
        return Err(fail(
            "trace",
            format!(
                "recorded {} instructions, golden {}",
                rstats.insts, g.icount
            ),
        ));
    }
    let tf = spear_trace::TraceFile::decode(&bytes).map_err(|e| fail("trace", e.to_string()))?;

    let cfg = CoreConfig::baseline();
    let mut reference = Core::new(binary, cfg.clone());
    let ref_res = reference.run(CYCLE_BUDGET, u64::MAX).map_err(|e| Failure {
        config: label.to_string(),
        kind: "sim-error".to_string(),
        detail: e.to_string(),
    })?;

    let mut core = Core::with_source(binary, cfg, Box::new(TraceSource::new(&tf)));
    let res = core.run(CYCLE_BUDGET, u64::MAX).map_err(|e| Failure {
        config: label.to_string(),
        kind: "sim-error".to_string(),
        detail: e.to_string(),
    })?;
    if res.exit != RunExit::Halted {
        return Err(fail("exit", format!("expected Halted, got {:?}", res.exit)));
    }
    if res.stats.committed != g.icount {
        return Err(fail(
            "committed",
            format!(
                "replay retired {}, golden {}",
                res.stats.committed, g.icount
            ),
        ));
    }
    // Replay applies recorded store data, so architectural memory must
    // land byte-identical to the golden model. (Register values are not
    // tracked under replay — that is the `tracks_registers` contract.)
    if core.memory() != &g.mem {
        return Err(fail(
            "memory",
            first_byte_diff(core.memory().as_bytes(), g.mem.as_bytes()),
        ));
    }
    if res.stats != ref_res.stats {
        return Err(fail(
            "trace",
            "trace-driven baseline statistics diverge from the program-driven run".to_string(),
        ));
    }
    res.stats
        .check_invariants(8)
        .map_err(|e| fail("invariants", e))?;
    report.configs_checked += 1;
    Ok(())
}

/// Mid-run checkpoint oracle: capture at the halfway instruction with a
/// functional pass + warmer, round-trip the document through JSON
/// byte-identically, restore it into a fresh SPEAR core, and require the
/// back half to reach the same final state as the golden model.
fn check_checkpoint_roundtrip(
    p: &Program,
    binary: &SpearBinary,
    g: &Golden,
    report: &mut OracleReport,
) -> Result<(), Failure> {
    let label = "SPEAR-128/ctx2/checkpoint-roundtrip";
    let fail = |kind: &str, detail: String| Failure {
        config: label.to_string(),
        kind: kind.to_string(),
        detail,
    };
    if g.icount < 4 {
        return Ok(()); // nothing mid-run to capture
    }
    let mid = g.icount / 2;
    let cfg = CoreConfig::spear(128);
    let mut interp = Interp::new(p);
    let mut warmer = Warmer::new(cfg.hier, cfg.bpred);
    while interp.icount < mid {
        let si = interp
            .step()
            .map_err(|e| fail("checkpoint", e.to_string()))?;
        warmer.observe(&si);
    }
    let cp = Checkpoint::capture("fuzz", &interp, &warmer);

    // The JSON encoding must be a fixed point: decode(encode(cp)) must
    // re-encode byte-identically, or checkpoints drift across resumes.
    let json = cp.to_json();
    let cp2 = Checkpoint::from_json(&json).map_err(|e| fail("checkpoint", e))?;
    let json2 = cp2.to_json();
    if json != json2 {
        return Err(fail(
            "checkpoint",
            format!(
                "JSON round-trip not byte-identical: {} vs {} bytes, {}",
                json.len(),
                json2.len(),
                first_byte_diff(json.as_bytes(), json2.as_bytes())
            ),
        ));
    }

    let mut core = Core::new(binary, cfg);
    cp2.restore_into(&mut core)
        .map_err(|e| fail("checkpoint", e))?;
    let res = core
        .run(CYCLE_BUDGET, u64::MAX)
        .map_err(|e| fail("sim-error", e.to_string()))?;
    if res.exit != RunExit::Halted {
        return Err(fail("exit", format!("expected Halted, got {:?}", res.exit)));
    }
    if res.stats.committed != g.icount - mid {
        return Err(fail(
            "committed",
            format!(
                "restored run retired {}, expected {} ({} total - {} checkpointed)",
                res.stats.committed,
                g.icount - mid,
                g.icount,
                mid
            ),
        ));
    }
    if core.commit_regs() != &g.regs {
        return Err(fail(
            "registers",
            first_reg_diff(core.commit_regs(), &g.regs),
        ));
    }
    if core.memory() != &g.mem {
        return Err(fail(
            "memory",
            first_byte_diff(core.memory().as_bytes(), g.mem.as_bytes()),
        ));
    }
    res.stats
        .check_invariants(8)
        .map_err(|e| fail("invariants", e))?;
    report.configs_checked += 1;
    Ok(())
}

/// Sampled-vs-full oracle over the campaign machinery: simulate the
/// program as back-to-back checkpointed intervals (stride 1 — every
/// interval) and require the interval-committed counts to sum exactly to
/// the golden dynamic length, with the merged statistics still satisfying
/// the exact-slot invariant; then a stride-2 sampled pass where every
/// simulated interval must respect its own budget and invariants.
fn check_sampled_vs_full(
    p: &Program,
    binary: &SpearBinary,
    g: &Golden,
    report: &mut OracleReport,
) -> Result<(), Failure> {
    let cfg = CoreConfig::spear(128);
    let interval = (g.icount / 4).max(64);
    for stride in [1u64, 2] {
        let label = format!("SPEAR-128/ctx2/sampled-stride{stride}");
        let fail = |kind: &str, detail: String| Failure {
            config: label.clone(),
            kind: kind.to_string(),
            detail,
        };
        let set = capture_interval_checkpoints(
            p,
            "fuzz",
            cfg.hier,
            cfg.bpred,
            interval,
            stride,
            GOLDEN_BUDGET,
        )
        .map_err(|e| fail("sampled", e))?;
        if set.total_insts != g.icount {
            return Err(fail(
                "sampled",
                format!(
                    "functional pass counted {} instructions, golden {}",
                    set.total_insts, g.icount
                ),
            ));
        }
        let mut merged = CoreStats::default();
        let mut total_committed = 0u64;
        let overshoot = cfg.commit_width as u64 - 1;
        for cp in &set.checkpoints {
            let mut core = Core::new(binary, cfg.clone());
            cp.restore_into(&mut core)
                .map_err(|e| fail("checkpoint", e))?;
            // Windowed telemetry rides along on every interval: the
            // per-window partition must hold inside each interval and
            // survive the merge below (check_invariants covers both).
            core.enable_windows((interval / 4).max(16));
            let res = core
                .run(CYCLE_BUDGET, interval)
                .map_err(|e| fail("sim-error", e.to_string()))?;
            if res.exit == RunExit::CycleBudget {
                return Err(fail("exit", "interval hit the cycle budget".to_string()));
            }
            // An interval commits exactly its share of the instruction
            // stream: `remaining` when the program ends inside it (it
            // must halt), else the full budget — plus at most one
            // commit-cycle of overshoot (the budget is checked at cycle
            // boundaries and a cycle retires up to `commit_width`).
            let remaining = set.total_insts - cp.inst_index;
            let committed = res.stats.committed;
            let ok = if remaining <= interval {
                res.exit == RunExit::Halted && committed == remaining
            } else {
                (interval..=interval + overshoot).contains(&committed)
            };
            if !ok {
                return Err(fail(
                    "sampled",
                    format!(
                        "interval at {} retired {} (exit {:?}); budget {}, {} remaining",
                        cp.inst_index, committed, res.exit, interval, remaining
                    ),
                ));
            }
            res.stats
                .check_invariants(8)
                .map_err(|e| fail("invariants", e))?;
            let window_committed: u64 = res.stats.windows.iter().map(|w| w.committed).sum();
            if res.stats.windows.is_empty() || window_committed != committed {
                return Err(fail(
                    "windows",
                    format!(
                        "interval at {} committed {} but its {} window(s) sum to {}",
                        cp.inst_index,
                        committed,
                        res.stats.windows.len(),
                        window_committed
                    ),
                ));
            }
            total_committed += committed;
            merged.merge(&res.stats);
        }
        merged
            .check_invariants(8)
            .map_err(|e| fail("invariants", format!("merged aggregate: {e}")))?;
        // The concatenated windows of the merged aggregate still account
        // for every committed instruction exactly once.
        let merged_window_committed: u64 = merged.windows.iter().map(|w| w.committed).sum();
        if merged_window_committed != total_committed {
            return Err(fail(
                "windows",
                format!(
                    "merged windows sum to {merged_window_committed}, intervals to {total_committed}"
                ),
            ));
        }
        // Back-to-back intervals cover the whole program; overshoot can
        // only double-count, never skip.
        if stride == 1
            && !(g.icount..=g.icount + overshoot * set.checkpoints.len() as u64)
                .contains(&total_committed)
        {
            return Err(fail(
                "sampled",
                format!(
                    "back-to-back intervals retired {} total, golden {}",
                    total_committed, g.icount
                ),
            ));
        }
        report.configs_checked += 1;
    }
    Ok(())
}

/// SimPoint oracle over the whole phase-clustering pipeline: collect
/// per-interval BBVs from the golden interpreter, cluster them, capture
/// warm checkpoints at the representative boundaries, simulate one
/// representative per phase, and blend the statistics by phase
/// population. Checks the structural contract end to end — BBVs tile the
/// dynamic stream exactly, clustering is deterministic with every
/// interval in exactly one phase and weights summing to one, each
/// representative commits its own interval's share, and the blended
/// aggregate still satisfies the exact-slot invariant with a committed
/// total within one interval per phase of the golden dynamic length
/// (the tail interval may stand for — or be represented by —
/// full-length ones).
fn check_simpoint_vs_full(
    p: &Program,
    binary: &SpearBinary,
    g: &Golden,
    report: &mut OracleReport,
) -> Result<(), Failure> {
    let label = "SPEAR-128/ctx2/simpoint";
    let fail = |kind: &str, detail: String| Failure {
        config: label.to_string(),
        kind: kind.to_string(),
        detail,
    };
    let cfg = CoreConfig::spear(128);
    let interval = (g.icount / 4).max(64);

    // Pass A: basic-block vectors must tile the golden stream exactly.
    let (bbvs, total) =
        spear_exec::collect_bbvs(p, interval, GOLDEN_BUDGET).map_err(|e| fail("simpoint", e))?;
    if total != g.icount {
        return Err(fail(
            "simpoint",
            format!("BBV pass counted {total} instructions, golden {}", g.icount),
        ));
    }
    let tiled: u64 = bbvs.iter().map(|b| b.len).sum();
    if tiled != total {
        return Err(fail(
            "simpoint",
            format!("BBV intervals sum to {tiled}, stream has {total}"),
        ));
    }

    // Clustering: deterministic, every interval in exactly one phase,
    // phase populations summing to n, weights summing to one.
    let counts: Vec<Vec<(u64, u64)>> = bbvs.iter().map(|b| b.counts.clone()).collect();
    let sp_cfg = spear_simpoint::SimpointConfig {
        k: 3,
        ..Default::default()
    };
    let clustering = spear_simpoint::cluster(&counts, &sp_cfg);
    if spear_simpoint::cluster(&counts, &sp_cfg) != clustering {
        return Err(fail("simpoint", "clustering is not deterministic".into()));
    }
    if clustering.assignments.len() != bbvs.len()
        || clustering.assignments.iter().any(|&a| a >= clustering.k)
    {
        return Err(fail(
            "simpoint",
            format!(
                "{} assignments over {} intervals, k={}",
                clustering.assignments.len(),
                bbvs.len(),
                clustering.k
            ),
        ));
    }
    let population: u64 = clustering.counts.iter().sum();
    if population != bbvs.len() as u64 {
        return Err(fail(
            "simpoint",
            format!("phase counts sum to {population}, n={}", bbvs.len()),
        ));
    }
    let weight_sum: f64 = clustering.weights.iter().sum();
    if (weight_sum - 1.0).abs() > 1e-9 {
        return Err(fail(
            "simpoint",
            format!("weights sum to {weight_sum}, not 1.0"),
        ));
    }

    // Pass B: warm checkpoints at the representative boundaries, then
    // one weighted cycle-level run per phase.
    let mut reps: Vec<(u64, u64, u64)> = clustering
        .representatives
        .iter()
        .zip(&clustering.counts)
        .map(|(&r, &c)| (bbvs[r].start_inst, bbvs[r].len, c))
        .collect();
    reps.sort_unstable();
    let boundaries: Vec<u64> = reps.iter().map(|&(s, _, _)| s).collect();
    let set = capture_checkpoints_at(p, "fuzz", cfg.hier, cfg.bpred, &boundaries, GOLDEN_BUDGET)
        .map_err(|e| fail("simpoint", e))?;
    if set.total_insts != total || set.checkpoints.len() != reps.len() {
        return Err(fail(
            "simpoint",
            format!(
                "warming pass saw {} instructions / {} checkpoints, wanted {total} / {}",
                set.total_insts,
                set.checkpoints.len(),
                reps.len()
            ),
        ));
    }
    let overshoot = cfg.commit_width as u64 - 1;
    let mut blended = CoreStats::default();
    let mut blended_committed = 0u64;
    for (cp, &(start, len, weight)) in set.checkpoints.iter().zip(&reps) {
        let mut core = Core::new(binary, cfg.clone());
        cp.restore_into(&mut core)
            .map_err(|e| fail("checkpoint", e))?;
        let res = core
            .run(CYCLE_BUDGET, interval)
            .map_err(|e| fail("sim-error", e.to_string()))?;
        let committed = res.stats.committed;
        let ok = if len < interval {
            res.exit == RunExit::Halted && committed == len
        } else {
            (interval..=interval + overshoot).contains(&committed)
        };
        if !ok {
            return Err(fail(
                "simpoint",
                format!(
                    "representative at {start} (len {len}) retired {committed} (exit {:?})",
                    res.exit
                ),
            ));
        }
        res.stats
            .check_invariants(8)
            .map_err(|e| fail("invariants", e))?;
        blended.merge_scaled(&res.stats, weight);
        blended_committed += committed * weight;
    }
    blended
        .check_invariants(8)
        .map_err(|e| fail("invariants", format!("blended aggregate: {e}")))?;
    let slack = clustering.k as u64 * (interval + overshoot);
    if blended_committed.abs_diff(g.icount) > slack {
        return Err(fail(
            "simpoint",
            format!(
                "blended committed {blended_committed}, golden {} (slack {slack})",
                g.icount
            ),
        ));
    }
    report.configs_checked += 1;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{SegKind, Segment};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clean_tree_passes_a_mixed_spec() {
        let spec = ProgramSpec {
            seed: 99,
            segments: vec![
                Segment {
                    kind: SegKind::Gather,
                    a: 100,
                    b: 3,
                },
                Segment {
                    kind: SegKind::Diamond,
                    a: 1,
                    b: 2,
                },
                Segment {
                    kind: SegKind::PointerChase,
                    a: 60,
                    b: 17,
                },
                Segment {
                    kind: SegKind::StoreLoadMix,
                    a: 0,
                    b: 9,
                },
            ],
        };
        let report = check(&spec).expect("clean tree must pass");
        assert!(report.golden_icount > 0);
        // 9 matrix configs (3 machines x {ctx2, ctx4, ctx2+tage}) +
        // checkpoint round-trip + two sampled passes + the simpoint
        // blend + trace replay.
        assert_eq!(report.configs_checked, 14);
    }

    #[test]
    fn random_specs_pass_on_clean_tree() {
        let mut rng = StdRng::seed_from_u64(1234);
        for _ in 0..3 {
            let spec = ProgramSpec::generate(&mut rng);
            check(&spec).expect("clean tree must pass");
        }
    }
}
