//! Seeded, constrained random program generation.
//!
//! A fuzz case is a [`ProgramSpec`]: a seed plus a list of [`Segment`]s,
//! each a small parameterized code idiom. The spec — not the rendered
//! [`Program`] — is the unit the shrinker mutates and the corpus stores,
//! because it is tiny, serializable, and trivially minimizable (drop
//! segments, halve parameters).
//!
//! Every construct the renderer emits terminates by construction: all
//! loops count a dedicated register down to zero, all pointer chases are
//! cyclic permutations walked a bounded number of steps, and every memory
//! address is masked into an allocated region before use. The idiom mix
//! is deliberately biased toward what SPEAR cares about: pointer-chasing
//! and strided loops over a 1 MiB array (delinquent loads that miss L1D
//! and get p-threads from the compiler), plus branches, calls, and
//! sub-word store/load overlap to stress the rest of the pipeline.

use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};
use spear_isa::asm::Asm;
use spear_isa::reg::*;
use spear_isa::Program;

/// Code idioms the renderer knows how to emit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SegKind {
    /// Straight-line integer ALU chain.
    AluChain,
    /// Data-dependent branch diamond (two arms, one join).
    Diamond,
    /// Counted loop of sequential loads + stores over the small array.
    CountedLoop,
    /// LCG-indexed gather over the 1 MiB array (delinquent loads).
    Gather,
    /// Pointer chase through a 32 KiB cyclic linked list (misses L1D).
    PointerChase,
    /// Strided load+store sweep over the 1 MiB array.
    StridedSweep,
    /// Call/return pair, optionally nested one deep.
    CallPair,
    /// Sub-word stores and loads at overlapping, straddling offsets.
    StoreLoadMix,
    /// Two-level counted loop nest with a load in the inner body.
    NestedLoop,
    /// Gather whose index state round-trips through memory every
    /// iteration, so the delinquent load's backward slice contains a
    /// store (exercises p-thread store isolation and forwarding).
    FeedbackGather,
}

/// All kinds, for uniform sampling.
pub const ALL_KINDS: [SegKind; 10] = [
    SegKind::AluChain,
    SegKind::Diamond,
    SegKind::CountedLoop,
    SegKind::Gather,
    SegKind::PointerChase,
    SegKind::StridedSweep,
    SegKind::CallPair,
    SegKind::StoreLoadMix,
    SegKind::NestedLoop,
    SegKind::FeedbackGather,
];

/// One parameterized idiom instance. `a` and `b` are free parameters the
/// renderer folds into safe ranges (iteration counts, strides, offsets),
/// so *any* `u32` values render to a valid, terminating program — the
/// shrinker may halve them blindly.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// The idiom.
    pub kind: SegKind,
    /// Primary parameter (usually the iteration count).
    pub a: u32,
    /// Secondary parameter (stride, offset, or variant selector).
    pub b: u32,
}

/// A complete fuzz case: everything needed to reproduce a program.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgramSpec {
    /// Seeds the data image contents and in-segment constants.
    pub seed: u64,
    /// The program body, rendered segment by segment.
    pub segments: Vec<Segment>,
}

/// Number of u64 nodes in the pointer-chase list (32 KiB — as large as
/// L1D, so a cold chase misses).
const CHAIN_NODES: u64 = 4096;
/// Bytes in the large gather/sweep array.
const BIG_BYTES: u64 = 1 << 20;
/// u64 entries in the small sequential array.
const DATA_WORDS: u64 = 512;

impl ProgramSpec {
    /// Draw a random spec: 1–7 segments with uniform kinds and free
    /// parameters.
    pub fn generate<R: RngCore>(rng: &mut R) -> ProgramSpec {
        let n = rng.random_range(1..8usize);
        let segments = (0..n)
            .map(|_| Segment {
                kind: ALL_KINDS[rng.random_range(0..ALL_KINDS.len())],
                a: rng.next_u64() as u32,
                b: rng.next_u64() as u32,
            })
            .collect();
        ProgramSpec {
            seed: rng.next_u64(),
            segments,
        }
    }

    /// Render to an executable [`Program`]. Total: any seed and any
    /// parameter values produce a valid program that halts.
    pub fn render(&self) -> Program {
        let seed = self.seed;
        let mut a = Asm::new();

        // Initialized data: a small sequential array, the cyclic chase
        // list (stored as *byte offsets* into itself so the contents are
        // layout-independent), and a byte region for sub-word traffic.
        let data: Vec<u64> = (0..DATA_WORDS).map(|i| i.wrapping_mul(seed | 1)).collect();
        let d = a.alloc_u64("data", &data);
        // `step` odd and CHAIN_NODES a power of two → gcd(step, n) = 1 →
        // the successor map i ↦ (i + step) mod n is one full cycle.
        let step = (seed | 1) % CHAIN_NODES;
        let chain: Vec<u64> = (0..CHAIN_NODES)
            .map(|i| 8 * ((i + step) % CHAIN_NODES))
            .collect();
        let c = a.alloc_u64("chain", &chain);
        let mix: Vec<u8> = (0..256u64).map(|i| (i as u8).wrapping_mul(31)).collect();
        let m = a.alloc_bytes("mix", &mix);
        // Reserved (zeroed) memory last, as the assembler requires.
        let big = a.reserve("big", BIG_BYTES);

        // Register conventions: R10 accumulator; R20 data, R21 big,
        // R22 chain, R23 mix bases; R11–R17 scratch; R30/R31 link.
        a.li(R10, seed as i64);
        a.li(R20, d as i64);
        a.li(R21, big as i64);
        a.li(R22, c as i64);
        a.li(R23, m as i64);

        for (i, seg) in self.segments.iter().enumerate() {
            render_segment(&mut a, i, seg, seed);
        }
        a.halt();
        a.finish().expect("generated program assembles")
    }
}

fn render_segment(a: &mut Asm, i: usize, seg: &Segment, seed: u64) {
    match seg.kind {
        SegKind::AluChain => {
            let ops = seg.a % 8 + 1;
            for k in 0..ops {
                match (seg.b as u64 + k as u64) % 4 {
                    0 => {
                        a.addi(R10, R10, 3);
                    }
                    1 => {
                        a.muli(R11, R10, 7);
                        a.xor(R10, R10, R11);
                    }
                    2 => {
                        a.slli(R11, R10, (seg.b % 5 + 1) as i64);
                        a.add(R10, R10, R11);
                    }
                    _ => {
                        a.srli(R11, R10, 13);
                        a.sub(R10, R10, R11);
                    }
                }
            }
        }
        SegKind::Diamond => {
            let t = format!("t{i}");
            let j = format!("j{i}");
            a.andi(R11, R10, (seg.b % 7 + 1) as i64);
            a.beq(R11, R0, &t);
            a.addi(R10, R10, 5);
            a.j(&j);
            a.label(&t);
            a.slli(R10, R10, 1);
            a.label(&j);
        }
        SegKind::CountedLoop => {
            let l = format!("l{i}");
            let count = seg.a % 24 + 1;
            a.li(R12, count as i64);
            a.mv(R13, R20);
            a.label(&l);
            a.ld(R14, R13, 0);
            a.add(R10, R10, R14);
            a.sd(R10, R13, 8);
            a.addi(R13, R13, 16);
            a.addi(R12, R12, -1);
            a.bne(R12, R0, &l);
        }
        SegKind::Gather => {
            let l = format!("g{i}");
            let count = seg.a % 160 + 8;
            a.li(R12, count as i64);
            a.li(R15, (seed | 1) as i64);
            a.label(&l);
            a.muli(R15, R15, 6364136223846793005);
            a.addi(R15, R15, 1442695040888963407);
            a.srli(R16, R15, 24);
            a.andi(R16, R16, (BIG_BYTES - 8) as i64);
            a.add(R16, R21, R16);
            a.ld(R17, R16, 0);
            a.add(R10, R10, R17);
            a.addi(R12, R12, -1);
            a.bne(R12, R0, &l);
        }
        SegKind::PointerChase => {
            let l = format!("p{i}");
            let count = seg.a % 128 + 8;
            a.li(R12, count as i64);
            // Start at an arbitrary (word-aligned) node.
            a.li(R16, (8 * (seg.b as u64 % CHAIN_NODES)) as i64);
            a.label(&l);
            a.add(R17, R22, R16);
            a.ld(R16, R17, 0); // next node's byte offset
            a.add(R10, R10, R16);
            a.addi(R12, R12, -1);
            a.bne(R12, R0, &l);
        }
        SegKind::StridedSweep => {
            let l = format!("s{i}");
            let count = seg.a % 48 + 4;
            let stride = 8 * (seg.b as u64 % 512 + 1);
            a.li(R12, count as i64);
            a.li(R13, 0);
            a.label(&l);
            a.andi(R16, R13, (BIG_BYTES - 8) as i64);
            a.add(R16, R21, R16);
            a.ld(R17, R16, 0);
            a.add(R10, R10, R17);
            a.sd(R10, R16, 0);
            a.addi(R13, R13, stride as i64);
            a.addi(R12, R12, -1);
            a.bne(R12, R0, &l);
        }
        SegKind::CallPair => {
            let f = format!("f{i}");
            let over = format!("o{i}");
            a.jal(R31, &f);
            a.j(&over);
            a.label(&f);
            a.addi(R10, R10, 11);
            if seg.b % 2 == 1 {
                // One level of nesting through a second link register.
                let g = format!("n{i}");
                let back = format!("b{i}");
                a.jal(R30, &g);
                a.j(&back);
                a.label(&g);
                a.xori(R10, R10, 0x55);
                a.jr(R30);
                a.label(&back);
            }
            a.jr(R31);
            a.label(&over);
        }
        SegKind::StoreLoadMix => {
            // Sub-word stores at offsets chosen to straddle the overlay's
            // 64-byte chunk boundary (around offset 64), then overlapping
            // reads of every width. All inside the 256-byte mix region.
            let o = (seg.b % 56 + 58) as i64; // 58..=113: spans 64
            a.sb(R10, R23, o);
            a.srli(R11, R10, 8);
            a.sh(R11, R23, o + 1);
            a.srli(R11, R10, 16);
            a.sw(R11, R23, o + 3);
            a.sd(R10, R23, o + 7);
            a.lb(R12, R23, o);
            a.add(R10, R10, R12);
            a.lhu(R12, R23, o + 2);
            a.add(R10, R10, R12);
            a.lwu(R12, R23, o + 5);
            a.add(R10, R10, R12);
            a.ld(R12, R23, o + 6);
            a.xor(R10, R10, R12);
        }
        SegKind::NestedLoop => {
            let lo = format!("x{i}");
            let li = format!("y{i}");
            let outer = seg.a % 6 + 1;
            let inner = seg.b % 8 + 1;
            a.li(R12, outer as i64);
            a.label(&lo);
            a.li(R13, inner as i64);
            a.mv(R14, R20);
            a.label(&li);
            a.ld(R15, R14, 0);
            a.add(R10, R10, R15);
            a.addi(R14, R14, 8);
            a.addi(R13, R13, -1);
            a.bne(R13, R0, &li);
            a.addi(R12, R12, -1);
            a.bne(R12, R0, &lo);
        }
        SegKind::FeedbackGather => {
            // The LCG index state lives in a mix-region word: loaded at
            // the top of each iteration, advanced, stored back. The
            // delinquent big-array load's backward slice therefore
            // crosses a store→load memory dependence, which the slicer
            // follows — p-threads for this load contain the store and
            // must keep it isolated in the overlay.
            let l = format!("w{i}");
            let count = seg.a % 160 + 8;
            let o = 8 * (seg.b % 24) as i64; // word slot, 0..=184
            a.sd(R10, R23, o); // seed the state word
            a.li(R12, count as i64);
            a.label(&l);
            a.ld(R15, R23, o);
            a.muli(R15, R15, 6364136223846793005);
            a.addi(R15, R15, 1442695040888963407);
            a.sd(R15, R23, o);
            a.srli(R16, R15, 24);
            a.andi(R16, R16, (BIG_BYTES - 8) as i64);
            a.add(R16, R21, R16);
            a.ld(R17, R16, 0);
            a.add(R10, R10, R17);
            a.addi(R12, R12, -1);
            a.bne(R12, R0, &l);
        }
    }
}

/// Derive the per-iteration seed for iteration `i` of a fuzz run from the
/// base seed (SplitMix64 step — decorrelates consecutive iterations).
pub fn iter_seed(base: u64, i: u64) -> u64 {
    let mut z = base.wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(i.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spear_exec::Interp;

    #[test]
    fn every_kind_renders_and_halts() {
        for (k, kind) in ALL_KINDS.iter().enumerate() {
            let spec = ProgramSpec {
                seed: 0xDEAD_BEEF ^ k as u64,
                segments: vec![Segment {
                    kind: *kind,
                    a: 12345,
                    b: 6789,
                }],
            };
            let p = spec.render();
            let mut i = Interp::new(&p);
            i.run(1_000_000).expect("executes");
            assert!(i.halted, "{kind:?} must halt");
        }
    }

    #[test]
    fn random_specs_halt_within_budget() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let spec = ProgramSpec::generate(&mut rng);
            let p = spec.render();
            let mut i = Interp::new(&p);
            i.run(2_000_000).expect("executes");
            assert!(i.halted, "spec {spec:?} must halt");
        }
    }

    #[test]
    fn render_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(42);
        let spec = ProgramSpec::generate(&mut rng);
        let p1 = spec.render();
        let p2 = spec.render();
        assert_eq!(p1.insts.len(), p2.insts.len());
        let mut a = Interp::new(&p1);
        let mut b = Interp::new(&p2);
        a.run(2_000_000).unwrap();
        b.run(2_000_000).unwrap();
        assert_eq!(a.state_checksum(), b.state_checksum());
    }

    #[test]
    fn extreme_parameters_still_render() {
        // The renderer must be total over the parameter space so the
        // shrinker can halve blindly.
        for (va, vb) in [(0, 0), (u32::MAX, u32::MAX), (1, u32::MAX), (u32::MAX, 0)] {
            let spec = ProgramSpec {
                seed: u64::MAX,
                segments: ALL_KINDS
                    .iter()
                    .map(|&kind| Segment { kind, a: va, b: vb })
                    .collect(),
            };
            let p = spec.render();
            let mut i = Interp::new(&p);
            i.run(2_000_000).expect("executes");
            assert!(i.halted);
        }
    }

    #[test]
    fn spec_json_round_trips() {
        let mut rng = StdRng::seed_from_u64(3);
        let spec = ProgramSpec::generate(&mut rng);
        let json = serde::json::to_string(&spec);
        let back: ProgramSpec = serde::json::from_str(&json).expect("round trip");
        assert_eq!(spec, back);
    }

    #[test]
    fn iter_seed_decorrelates() {
        assert_ne!(iter_seed(42, 0), iter_seed(42, 1));
        assert_ne!(iter_seed(42, 0), iter_seed(43, 0));
        assert_eq!(iter_seed(42, 7), iter_seed(42, 7));
    }
}
