//! `spear-fuzz` — the differential fuzzing harness.
//!
//! Three layers (see `ARCHITECTURE.md` § "Differential fuzz harness"):
//!
//! * [`gen`] — a seeded, constrained random program generator whose
//!   output always terminates, biased toward the memory idioms SPEAR
//!   targets (pointer chases, strided sweeps, gathers over a 1 MiB
//!   array) plus branches, calls, and sub-word store/load overlap;
//! * [`oracle`] — the architectural-equivalence judge: golden
//!   interpreter vs the cycle-level core across baseline/SPEAR front
//!   ends, 2/4 hardware contexts, the three Figure-6 machines, and
//!   sampled-vs-full checkpointed simulation, with structural invariants
//!   (exact CPI-stack slots, prefetch partition, cache tag-store
//!   well-formedness) and a mid-run checkpoint JSON round-trip;
//! * [`shrink`] + [`corpus`] — ddmin-style minimization of any failure
//!   into a small reproducer stored as JSON under `tests/corpus/`,
//!   replayed forever after as a regression test.
//!
//! Entry points: [`fuzz`] (the `spear-sim fuzz` subcommand's engine) and
//! [`replay`] (corpus regression replay, also used by `tests/`).

pub mod corpus;
pub mod gen;
pub mod oracle;
pub mod shrink;

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Stop fuzzing after this many distinct divergences: each one is shrunk
/// (expensive) and almost certainly the same root cause.
const MAX_DIVERGENCES: usize = 5;
/// Oracle-evaluation budget per shrink.
const SHRINK_BUDGET: usize = 250;

/// One found-and-minimized divergence.
#[derive(Clone, Debug)]
pub struct Finding {
    /// The minimized reproducer.
    pub repro: corpus::Reproducer,
    /// Where it was written, when a corpus directory was given.
    pub saved_to: Option<PathBuf>,
    /// Oracle evaluations the shrink consumed.
    pub shrink_evals: usize,
}

/// Outcome of a timed fuzz run.
#[derive(Clone, Debug, Default)]
pub struct FuzzSummary {
    /// Programs generated and judged.
    pub programs: u64,
    /// Golden instructions executed across all programs (throughput).
    pub golden_insts: u64,
    /// Pre-execution episodes completed across all SPEAR runs (generator
    /// health: should be well above zero).
    pub episodes_completed: u64,
    /// Non-inclusive-hierarchy diagnostic tally (see
    /// `Hierarchy::inclusion_violations`).
    pub inclusion_violations: u64,
    /// Divergences found (== `findings.len()`).
    pub divergences: usize,
    /// Minimized reproducers for each divergence.
    pub findings: Vec<Finding>,
    /// Wall-clock seconds spent.
    pub elapsed_secs: f64,
}

/// Fuzz for (at least) `seconds` wall-clock seconds starting from `seed`,
/// judging one generated program per iteration. Failures are shrunk and,
/// when `corpus_dir` is given, written there as reproducers. `log` gets
/// one line per notable event (progress, divergence, reproducer path).
pub fn fuzz(
    seconds: u64,
    seed: u64,
    corpus_dir: Option<&Path>,
    mut log: impl FnMut(&str),
) -> FuzzSummary {
    let start = Instant::now();
    let deadline = start + Duration::from_secs(seconds);
    let mut summary = FuzzSummary::default();
    let mut iter = 0u64;
    let mut last_report = Instant::now();

    while Instant::now() < deadline && summary.divergences < MAX_DIVERGENCES {
        let iter_seed = gen::iter_seed(seed, iter);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(iter_seed);
        let spec = gen::ProgramSpec::generate(&mut rng);
        summary.programs += 1;
        match oracle::check(&spec) {
            Ok(report) => {
                summary.golden_insts += report.golden_icount;
                summary.episodes_completed += report.episodes_completed;
                summary.inclusion_violations += report.inclusion_violations;
            }
            Err(failure) => {
                summary.divergences += 1;
                log(&format!(
                    "DIVERGENCE on iter {iter} (seed {iter_seed:#x}): {failure}"
                ));
                log("shrinking...");
                let shrunk = shrink::shrink(&spec, failure, SHRINK_BUDGET);
                log(&format!(
                    "minimized to {} segment(s), {} static / {} dynamic instructions \
                     ({} oracle evals): {}",
                    shrunk.spec.segments.len(),
                    shrunk.static_insts,
                    shrunk.golden_icount,
                    shrunk.evals,
                    shrunk.failure
                ));
                let repro = corpus::Reproducer {
                    origin: format!("seed{seed}/iter{iter}"),
                    found_config: shrunk.failure.config.clone(),
                    found_kind: shrunk.failure.kind.clone(),
                    found_detail: shrunk.failure.detail.clone(),
                    golden_icount: shrunk.golden_icount,
                    static_insts: shrunk.static_insts,
                    spec: shrunk.spec,
                };
                let saved_to = corpus_dir.map(|dir| match corpus::save(dir, &repro) {
                    Ok(path) => {
                        log(&format!("reproducer written to {}", path.display()));
                        path
                    }
                    Err(e) => {
                        log(&format!("cannot write reproducer: {e}"));
                        PathBuf::new()
                    }
                });
                summary.findings.push(Finding {
                    repro,
                    saved_to,
                    shrink_evals: shrunk.evals,
                });
            }
        }
        iter += 1;
        if last_report.elapsed() >= Duration::from_secs(5) {
            log(&format!(
                "{} programs, {} divergences, {:.0}s elapsed",
                summary.programs,
                summary.divergences,
                start.elapsed().as_secs_f64()
            ));
            last_report = Instant::now();
        }
    }
    summary.elapsed_secs = start.elapsed().as_secs_f64();
    summary
}

/// Outcome of a corpus replay.
#[derive(Clone, Debug, Default)]
pub struct ReplayReport {
    /// Reproducers replayed.
    pub replayed: usize,
    /// Entries that diverged again: `(path, failure)`. Corpus entries are
    /// fixed bugs — any entry here is a regression.
    pub regressions: Vec<(PathBuf, oracle::Failure)>,
}

/// Re-run the full oracle on every reproducer in `dir`. An error means
/// the corpus itself is unreadable; regressions are reported in the
/// return value, not as `Err`.
pub fn replay(dir: &Path, mut log: impl FnMut(&str)) -> Result<ReplayReport, String> {
    let entries = corpus::load_dir(dir)?;
    let mut report = ReplayReport::default();
    for (path, repro) in entries {
        report.replayed += 1;
        match oracle::check(&repro.spec) {
            Ok(_) => log(&format!("ok   {}", path.display())),
            Err(failure) => {
                log(&format!("FAIL {}: {failure}", path.display()));
                report.regressions.push((path, failure));
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_second_smoke_finds_nothing_on_clean_tree() {
        let mut lines = Vec::new();
        let summary = fuzz(1, 42, None, |s| lines.push(s.to_string()));
        assert!(summary.programs >= 1);
        assert_eq!(summary.divergences, 0, "clean tree diverged: {lines:?}");
    }

    #[test]
    fn replay_of_empty_dir_is_empty() {
        let report = replay(Path::new("/nonexistent/corpus"), |_| {}).expect("empty");
        assert_eq!(report.replayed, 0);
        assert!(report.regressions.is_empty());
    }
}
