//! The six SPEC2000 kernels (Table 1): four CINT2000 (`gzip`, `mcf`,
//! `vpr`, `bzip2`) and two CFP2000 (`equake`, `art`).
//!
//! Each mirrors the access pattern that drives the paper's result for
//! that benchmark: `gzip` has *many* distinct miss-y static loads (the
//! excessive-triggering failure mode); `mcf` concentrates its misses in
//! two potential-array loads inside a branchy arc scan (the +87.6%
//! winner); `vpr` gathers endpoint coordinates with min/max branches;
//! `bzip2` does data-dependent byte-string comparisons; `equake` is a
//! sparse FP matvec whose long-latency FP ops overlap the prefetches;
//! `art` streams a larger-than-L2 weight matrix (the best miss-reduction
//! case, Figure 8).

use crate::spec::{Input, Suite, Workload};
use crate::util::{rng, uniform_f64, uniform_indices};
use rand::Rng;
use spear_isa::asm::Asm;
use spear_isa::reg::*;
use spear_isa::Program;

/// `gzip` — LZ77 match search through hash-head and prev-chain tables.
///
/// Every load in the probe chains *through* a previous load (head →
/// prev → prev → window bytes), and the tables are only partly cache
/// resident, so misses are moderate but spread over many static loads in
/// the hottest loop. The SPEAR compiler selects most of them as
/// delinquent, triggering constantly ("gzip contains too many d-loads …
/// which causes an excessive amount of triggering operations"), while the
/// load-chained addresses give the p-thread nothing it can run ahead on —
/// the paper's gzip slowdown.
pub fn gzip() -> Workload {
    fn build(input: Input) -> Program {
        const WIN: i64 = 1 << 19; // 512 KiB window
        const HASH: i64 = 1 << 15; // 2^15 heads × 8 B = 256 KiB
        let positions = input.scale as i64;
        let mut a = Asm::new();
        let mut r = rng(input.seed);
        let text: Vec<u8> = (0..WIN + 16)
            .map(|_| r.random_range(0u8..64) + 32)
            .collect();
        let heads = uniform_indices(HASH as usize, WIN as usize - 64, input.seed ^ 0x6A);
        // prev[pos & mask] links positions with equal hash (synthetic:
        // random earlier positions).
        let prevs = uniform_indices(HASH as usize, WIN as usize - 64, input.seed ^ 0xA6);
        let win_b = a.alloc_bytes("window", &text);
        let heads_b = a.alloc_u64("heads", &heads);
        let prevs_b = a.alloc_u64("prevs", &prevs);
        let result = a.reserve("result", 8);
        a.li(R1, win_b as i64);
        a.li(R2, heads_b as i64);
        a.li(R20, prevs_b as i64);
        a.li(R3, positions);
        a.li(R4, 0); // acc
        a.li(R5, 64); // pos cursor
        a.label("loop");
        // hash from three window bytes at pos.
        a.add(R6, R1, R5);
        a.lbu(R7, R6, 0); // d-load: window byte
        a.lbu(R8, R6, 1);
        a.lbu(R9, R6, 2);
        a.slli(R7, R7, 12);
        a.slli(R8, R8, 6);
        a.xor(R7, R7, R8);
        a.xor(R7, R7, R9);
        a.muli(R7, R7, 2654435761);
        a.srli(R7, R7, 8);
        a.andi(R7, R7, HASH - 1); // hash
        a.slli(R10, R7, 3);
        a.add(R10, R2, R10);
        a.ld(R11, R10, 0); // d-load: head[hash] → candidate pos
        a.sd(R5, R10, 0); // head[hash] = pos
                          // Walk two prev-chain hops, each chained through the last load.
        for hop in 0..2 {
            let skip = format!("skip{hop}");
            a.add(R12, R1, R11);
            a.lbu(R13, R12, 0); // d-load: candidate byte
            a.lbu(R14, R6, 0);
            // Rare-match branch (biased: bytes differ 63/64).
            a.bne(R13, R14, &skip);
            a.addi(R4, R4, 1);
            a.label(&skip);
            a.add(R4, R4, R13);
            // next candidate: prev[cand mod HASH]
            a.andi(R15, R11, HASH - 1);
            a.slli(R15, R15, 3);
            a.add(R15, R20, R15);
            a.ld(R11, R15, 0); // d-load: prev-chain hop
        }
        a.add(R4, R4, R11);
        // The next position comes from the last chain value (gzip hops to
        // wherever the match candidates lead): chained through a load, so
        // even the position stream is opaque to pre-execution.
        a.addi(R5, R11, 7);
        a.andi(R5, R5, WIN - 1);
        a.addi(R3, R3, -1);
        a.bne(R3, R0, "loop");
        a.li(R6, result as i64);
        a.sd(R4, R6, 0);
        a.halt();
        a.finish().unwrap()
    }
    Workload {
        name: "gzip",
        suite: Suite::SpecInt,
        description: "LZ77 probes chaining head -> prev -> prev tables (many moderate d-loads)",
        build,
        profile_input: Input {
            seed: 101,
            scale: 3_000,
        },
        eval_input: Input {
            seed: 10117,
            scale: 5_000,
        },
    }
}

/// `mcf` — network-simplex arc scan.
///
/// Sequentially scans an arc array, gathering the tail/head node
/// *potentials* from a 1 MiB node array (two random loads per arc — the
/// concentrated delinquent loads) and updating flow on a data-dependent
/// reduced-cost test. Short body and branch-heavy (IPB ≈ 3.5).
pub fn mcf() -> Workload {
    fn build(input: Input) -> Program {
        const ARCS: i64 = 1 << 14;
        const NODES: i64 = 1 << 17; // 2^17 × 8 B = 1 MiB potentials
        let passes = input.scale as i64;
        let mut a = Asm::new();
        // Arc: [tail: u64, head: u64, cost: u64, flow: u64] = 32 B.
        let tails = uniform_indices(ARCS as usize, NODES as usize, input.seed ^ 0x3C);
        let heads = uniform_indices(ARCS as usize, NODES as usize, input.seed ^ 0xC3);
        let mut arcs = vec![0u8; (ARCS as usize) * 32];
        let mut r = rng(input.seed ^ 0x77);
        for i in 0..ARCS as usize {
            arcs[i * 32..i * 32 + 8].copy_from_slice(&tails[i].to_le_bytes());
            arcs[i * 32 + 8..i * 32 + 16].copy_from_slice(&heads[i].to_le_bytes());
            let cost: u64 = r.random_range(0..1000);
            arcs[i * 32 + 16..i * 32 + 24].copy_from_slice(&cost.to_le_bytes());
        }
        let pots: Vec<u64> = (0..NODES as u64)
            .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15 ^ input.seed) % 1000)
            .collect();
        let arcs_b = a.alloc_bytes("arcs", &arcs);
        let pots_b = a.alloc_u64("potentials", &pots);
        let result = a.reserve("result", 8);
        a.li(R14, passes);
        a.li(R4, 0); // acc
        a.label("pass");
        a.li(R1, arcs_b as i64); // arc cursor
        a.li(R2, pots_b as i64);
        a.li(R3, ARCS);
        a.label("arc");
        a.ld(R5, R1, 0); // tail (sequential)
        a.ld(R6, R1, 8); // head (same block)
        a.ld(R7, R1, 16); // cost
        a.slli(R8, R5, 3); // slice
        a.add(R8, R2, R8); // slice
        a.ld(R9, R8, 0); // d-load: potential[tail] — random miss
        a.slli(R10, R6, 3); // slice
        a.add(R10, R2, R10); // slice
        a.ld(R11, R10, 0); // d-load: potential[head] — random miss
                           // reduced cost = cost - pot[tail] + pot[head]
        a.sub(R12, R7, R9);
        a.add(R12, R12, R11);
        a.bge(R12, R0, "noflow"); // data-dependent (~半)
        a.ld(R13, R1, 24); // flow
        a.addi(R13, R13, 1);
        a.sd(R13, R1, 24);
        a.addi(R4, R4, 1);
        a.label("noflow");
        a.add(R4, R4, R12);
        a.addi(R1, R1, 32);
        a.addi(R3, R3, -1);
        a.bne(R3, R0, "arc");
        a.addi(R14, R14, -1);
        a.bne(R14, R0, "pass");
        a.li(R6, result as i64);
        a.sd(R4, R6, 0);
        a.halt();
        a.finish().unwrap()
    }
    Workload {
        name: "mcf",
        suite: Suite::SpecInt,
        description: "arc scan gathering node potentials from a 1 MiB array (two d-loads per arc)",
        build,
        profile_input: Input {
            seed: 113,
            scale: 1,
        },
        eval_input: Input {
            seed: 11311,
            scale: 2,
        },
    }
}

/// `vpr` — placement bounding-box cost over random net endpoints.
pub fn vpr() -> Workload {
    fn build(input: Input) -> Program {
        const POINTS: i64 = 1 << 16; // two 512 KiB coordinate arrays
        let nets = input.scale as i64;
        let mut a = Asm::new();
        let xs = uniform_indices(POINTS as usize, 4096, input.seed ^ 0x11);
        let ys = uniform_indices(POINTS as usize, 4096, input.seed ^ 0x22);
        // Net list: pairs of endpoints, read sequentially.
        let endpoints = uniform_indices(2 * nets as usize, POINTS as usize, input.seed ^ 0x33);
        let xs_b = a.alloc_u64("xs", &xs);
        let ys_b = a.alloc_u64("ys", &ys);
        let nets_b = a.alloc_u64("nets", &endpoints);
        let result = a.reserve("result", 8);
        a.li(R1, xs_b as i64);
        a.li(R2, ys_b as i64);
        a.li(R14, nets_b as i64);
        a.li(R3, nets);
        a.li(R4, 0); // cost acc
        a.li(R5, 0); // long-net counter
        a.label("net");
        a.ld(R6, R14, 0); // slice: endpoint a (sequential)
        a.ld(R7, R14, 8); // slice: endpoint b
        a.slli(R8, R6, 3); // slice
        a.add(R8, R1, R8); // slice
        a.ld(R9, R8, 0); // d-load: x[a]
        a.slli(R10, R7, 3);
        a.add(R10, R1, R10);
        a.ld(R11, R10, 0); // d-load: x[b]
        a.slli(R12, R6, 3);
        a.add(R12, R2, R12);
        a.ld(R13, R12, 0); // d-load: y[a]
        a.slli(R15, R7, 3);
        a.add(R15, R2, R15);
        a.ld(R16, R15, 0); // d-load: y[b]
                           // bbox half-perimeter, branchless: |xa-xb| + |ya-yb|.
        a.sub(R17, R9, R11);
        a.srai(R18, R17, 63);
        a.xor(R17, R17, R18);
        a.sub(R17, R17, R18);
        a.add(R4, R4, R17);
        let span_x = spear_isa::reg::R17;
        a.sub(R19, R13, R16);
        a.srai(R18, R19, 63);
        a.xor(R19, R19, R18);
        a.sub(R19, R19, R18);
        a.add(R4, R4, R19);
        // Count long nets (span > 3583 ≈ 12% of spans): a biased,
        // data-dependent branch like a real placer's cost test.
        a.slti(R20, span_x, 3584);
        a.bne(R20, R0, "short");
        a.addi(R5, R5, 1);
        a.label("short");
        a.addi(R14, R14, 16); // slice: net cursor
        a.addi(R3, R3, -1);
        a.bne(R3, R0, "net");
        a.add(R4, R4, R5);
        a.li(R6, result as i64);
        a.sd(R4, R6, 0);
        a.halt();
        a.finish().unwrap()
    }
    Workload {
        name: "vpr",
        suite: Suite::SpecInt,
        description: "bounding-box cost of random net endpoints over 1 MiB coordinate arrays",
        build,
        profile_input: Input {
            seed: 127,
            scale: 3_500,
        },
        eval_input: Input {
            seed: 12713,
            scale: 10_000,
        },
    }
}

/// Rust reference for `vpr` (used by the golden-value test).
pub fn vpr_reference(input: Input) -> u64 {
    const POINTS: usize = 1 << 16;
    let nets = input.scale as usize;
    let xs = uniform_indices(POINTS, 4096, input.seed ^ 0x11);
    let ys = uniform_indices(POINTS, 4096, input.seed ^ 0x22);
    let endpoints = uniform_indices(2 * nets, POINTS, input.seed ^ 0x33);
    let mut cost = 0u64;
    let mut long_nets = 0u64;
    for n in 0..nets {
        let a = endpoints[2 * n] as usize;
        let b = endpoints[2 * n + 1] as usize;
        let span_x = xs[a].abs_diff(xs[b]);
        let span_y = ys[a].abs_diff(ys[b]);
        cost = cost.wrapping_add(span_x).wrapping_add(span_y);
        if span_x >= 3584 {
            long_nets += 1;
        }
    }
    cost.wrapping_add(long_nets)
}

/// `bzip2` — suffix-style byte-string comparisons at random positions.
pub fn bzip2() -> Workload {
    fn build(input: Input) -> Program {
        const TEXT: i64 = 1 << 20; // 1 MiB
        let cmps = input.scale as i64;
        let mut a = Asm::new();
        let mut r = rng(input.seed);
        // 16 symbols: mismatch at the first byte 15/16 of the time, so
        // the comparison-exit branch is biased (bzip2's Table 3 hit ratio
        // is 0.9425) while the d-loads stay random.
        let text: Vec<u8> = (0..TEXT).map(|_| r.random_range(0u8..16) + 64).collect();
        let text_b = a.alloc_bytes("text", &text);
        let result = a.reserve("result", 8);
        a.li(R1, text_b as i64);
        a.li(R3, cmps);
        a.li(R4, 0);
        a.li(R5, (input.seed | 1) as i64);
        a.li(R26, 6364136223846793005);
        a.li(R27, 1442695040888963407);
        a.label("loop");
        a.mul(R5, R5, R26); // slice
        a.add(R5, R5, R27); // slice
        a.srli(R6, R5, 10); // slice
        a.andi(R6, R6, TEXT - 64); // slice: position 1
        a.srli(R7, R5, 34);
        a.andi(R7, R7, TEXT - 64); // position 2
        a.add(R8, R1, R6); // slice: addr 1
        a.add(R9, R1, R7); // addr 2
        a.li(R10, 0); // match length
        a.label("cmp");
        a.add(R11, R8, R10);
        a.lbu(R12, R11, 0); // d-load: byte at p1
        a.add(R13, R9, R10);
        a.lbu(R15, R13, 0); // d-load: byte at p2
        a.bne(R12, R15, "diff"); // data-dependent exit
        a.addi(R10, R10, 1);
        a.slti(R16, R10, 24);
        a.bne(R16, R0, "cmp");
        a.label("diff");
        a.add(R4, R4, R10);
        a.sub(R16, R12, R15);
        a.add(R4, R4, R16);
        a.addi(R3, R3, -1);
        a.bne(R3, R0, "loop");
        a.li(R6, result as i64);
        a.sd(R4, R6, 0);
        a.halt();
        a.finish().unwrap()
    }
    Workload {
        name: "bzip2",
        suite: Suite::SpecInt,
        description: "byte-string comparisons at random positions in a 1 MiB text",
        build,
        profile_input: Input {
            seed: 131,
            scale: 2_500,
        },
        eval_input: Input {
            seed: 13117,
            scale: 7_000,
        },
    }
}

/// `equake` — sparse matrix-vector product (CSR) with an x-vector gather.
///
/// The column-index stream is sequential; `x[col]` is the delinquent
/// gather over a 1 MiB vector. Long-latency FP multiply-adds overlap the
/// prefetches — the paper notes FP codes benefit most ("decoupled memory
/// accesses are particularly beneficial when faced with long latency
/// floating-point operations").
pub fn equake() -> Workload {
    fn build(input: Input) -> Program {
        const XELEMS: i64 = 1 << 17; // 1 MiB x vector
        const NNZ_PER_ROW: i64 = 8;
        let rows = input.scale as i64;
        let nnz = rows * NNZ_PER_ROW;
        let mut a = Asm::new();
        let cols = uniform_indices(nnz as usize, XELEMS as usize, input.seed ^ 0xE1);
        let vals = uniform_f64(nnz as usize, input.seed ^ 0xE2);
        let xv = uniform_f64(XELEMS as usize, input.seed ^ 0xE3);
        let cols_b = a.alloc_u64("cols", &cols);
        let vals_b = a.alloc_f64("vals", &vals);
        let x_b = a.alloc_f64("x", &xv);
        let y_b = a.reserve("y", (rows as u64) * 8);
        let result = a.reserve("result", 8);
        a.li(R1, cols_b as i64);
        a.li(R2, vals_b as i64);
        a.li(R3, x_b as i64);
        a.li(R13, y_b as i64);
        a.li(R14, rows);
        a.label("row");
        a.fcvt_d_l(F1, R0); // row sum = 0.0
        a.li(R15, NNZ_PER_ROW);
        a.label("elem");
        a.ld(R5, R1, 0); // slice: column index (sequential)
        a.slli(R6, R5, 3); // slice
        a.add(R6, R3, R6); // slice
        a.fld(F2, R6, 0); // d-load: x[col] — random gather
        a.fld(F3, R2, 0); // value (sequential)
        a.fmul(F4, F2, F3);
        a.fadd(F1, F1, F4);
        a.addi(R1, R1, 8); // slice: cursor
        a.addi(R2, R2, 8);
        a.addi(R15, R15, -1);
        a.bne(R15, R0, "elem");
        a.fsd(F1, R13, 0);
        a.addi(R13, R13, 8);
        a.addi(R14, R14, -1);
        a.bne(R14, R0, "row");
        // Checksum y as raw bits.
        a.li(R4, 0);
        a.li(R5, 0);
        a.li(R6, rows);
        a.li(R7, y_b as i64);
        a.label("sum");
        a.ld(R8, R7, 0);
        a.add(R4, R4, R8);
        a.addi(R7, R7, 8);
        a.addi(R5, R5, 1);
        a.blt(R5, R6, "sum");
        a.li(R6, result as i64);
        a.sd(R4, R6, 0);
        a.halt();
        a.finish().unwrap()
    }
    Workload {
        name: "equake",
        suite: Suite::SpecFp,
        description: "CSR sparse matvec with a random x-vector gather and FP MAC chain",
        build,
        profile_input: Input {
            seed: 137,
            scale: 1_200,
        },
        eval_input: Input {
            seed: 13719,
            scale: 3_200,
        },
    }
}

/// Rust reference for `equake` (used by the golden-value test).
pub fn equake_reference(input: Input) -> u64 {
    const XELEMS: usize = 1 << 17;
    const NNZ_PER_ROW: usize = 8;
    let rows = input.scale as usize;
    let nnz = rows * NNZ_PER_ROW;
    let cols = uniform_indices(nnz, XELEMS, input.seed ^ 0xE1);
    let vals = uniform_f64(nnz, input.seed ^ 0xE2);
    let xv = uniform_f64(XELEMS, input.seed ^ 0xE3);
    let mut acc = 0u64;
    for r in 0..rows {
        let mut sum = 0.0f64;
        for k in 0..NNZ_PER_ROW {
            let j = r * NNZ_PER_ROW + k;
            sum += xv[cols[j] as usize] * vals[j];
        }
        acc = acc.wrapping_add(sum.to_bits());
    }
    acc
}

/// Rust reference for `art` (used by the golden-value test).
pub fn art_reference(input: Input) -> u64 {
    const INPUTS: usize = 1 << 10;
    let neurons = (input.scale as usize).min(16_384);
    let w = uniform_f64(neurons * INPUTS, input.seed ^ 0xA1);
    let xv = uniform_f64(INPUTS, input.seed ^ 0xA2);
    let sums: Vec<f64> = (0..neurons)
        .map(|n| {
            let mut s = 0.0f64;
            for i in 0..INPUTS {
                s += w[n * INPUTS + i] * xv[i];
            }
            s
        })
        .collect();
    // Winner-take-all matching the kernel's fle-based scan (strict
    // greater-than updates; ties keep the earlier index).
    let mut best = 0usize;
    let mut best_v = sums[0];
    for (i, &v) in sums.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    (best as u64).wrapping_add(best_v as i64 as u64)
}

/// `art` — F1-layer weighted sums over a larger-than-L2 weight matrix,
/// then a winner-take-all max scan.
pub fn art() -> Workload {
    fn build(input: Input) -> Program {
        const INPUTS: i64 = 1 << 10; // 1024 inputs (8 KiB x, resident)

        // Each neuron owns an 8 KiB weight row; scaled inputs (`art@xN`)
        // cap at 16 Ki neurons (128 MiB of weights) instead of growing
        // the image without bound. Must match `art_reference`.
        let neurons = (input.scale as i64).min(16_384);
        let mut a = Asm::new();
        let w = uniform_f64((neurons * INPUTS) as usize, input.seed ^ 0xA1);
        let xv = uniform_f64(INPUTS as usize, input.seed ^ 0xA2);
        let w_b = a.alloc_f64("w", &w);
        let x_b = a.alloc_f64("x", &xv);
        let sums_b = a.reserve("sums", (neurons as u64) * 8);
        let result = a.reserve("result", 8);
        a.li(R1, w_b as i64); // weight cursor (streams 8×neurons KiB)
        a.li(R13, sums_b as i64);
        a.li(R14, neurons);
        a.label("neuron");
        a.li(R2, x_b as i64);
        a.li(R15, INPUTS / 2);
        a.fcvt_d_l(F1, R0);
        a.label("input");
        a.fld(F2, R1, 0); // d-load: weight stream (misses every block)
        a.fld(F3, R2, 0); // x (resident)
        a.fmul(F4, F2, F3);
        a.fadd(F1, F1, F4);
        a.fld(F2, R1, 8); // unrolled ×2
        a.fld(F3, R2, 8);
        a.fmul(F4, F2, F3);
        a.fadd(F1, F1, F4);
        a.addi(R1, R1, 16);
        a.addi(R2, R2, 16);
        a.addi(R15, R15, -1);
        a.bne(R15, R0, "input");
        a.fsd(F1, R13, 0);
        a.addi(R13, R13, 8);
        a.addi(R14, R14, -1);
        a.bne(R14, R0, "neuron");
        // Winner-take-all: index of the max sum.
        a.li(R4, 0); // best index
        a.li(R5, 0); // i
        a.li(R6, neurons);
        a.li(R7, sums_b as i64);
        a.fld(F1, R7, 0); // best value
        a.label("wta");
        a.slli(R8, R5, 3);
        a.add(R8, R7, R8);
        a.fld(F2, R8, 0);
        a.fle(R9, F2, F1);
        a.bne(R9, R0, "skip");
        a.fmov(F1, F2);
        a.mv(R4, R5);
        a.label("skip");
        a.addi(R5, R5, 1);
        a.blt(R5, R6, "wta");
        // result = best index + raw bits of the best sum
        a.fcvt_l_d(R8, F1);
        a.add(R4, R4, R8);
        a.li(R6, result as i64);
        a.sd(R4, R6, 0);
        a.halt();
        a.finish().unwrap()
    }
    Workload {
        name: "art",
        suite: Suite::SpecFp,
        description: "neural F1 layer: streaming weighted sums plus winner-take-all",
        build,
        profile_input: Input {
            seed: 149,
            scale: 16,
        },
        eval_input: Input {
            seed: 14923,
            scale: 48,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spear_exec::{Interp, Stop};

    fn run(program: &Program) -> (u64, u64) {
        let mut i = Interp::new(program);
        assert_eq!(i.run(80_000_000).unwrap(), Stop::Halted);
        let result = i.mem.read_u64(program.data_addr("result").unwrap());
        (result, i.icount)
    }

    #[test]
    fn all_spec_kernels_halt_with_results() {
        for w in [gzip(), mcf(), vpr(), bzip2(), equake(), art()] {
            let (result, icount) = run(&w.eval_program());
            assert_ne!(result, 0, "{}", w.name);
            assert!(icount > 50_000, "{}: {icount}", w.name);
            assert!(icount < 3_000_000, "{}: {icount}", w.name);
        }
    }

    #[test]
    fn vpr_matches_rust_reference() {
        let w = vpr();
        for input in [w.profile_input, w.eval_input] {
            let (result, _) = run(&(w.build)(input));
            assert_eq!(result, vpr_reference(input));
        }
    }

    #[test]
    fn equake_matches_rust_reference() {
        let w = equake();
        for input in [w.profile_input, w.eval_input] {
            let (result, _) = run(&(w.build)(input));
            assert_eq!(result, equake_reference(input));
        }
    }

    #[test]
    fn art_matches_rust_reference() {
        let w = art();
        for input in [w.profile_input, w.eval_input] {
            let (result, _) = run(&(w.build)(input));
            assert_eq!(result, art_reference(input));
        }
    }

    #[test]
    fn mcf_updates_flow_fields() {
        let w = mcf();
        let p = w.eval_program();
        let mut i = Interp::new(&p);
        i.run(80_000_000).unwrap();
        let base = p.data_addr("arcs").unwrap();
        let updated = (0..200).any(|n| i.mem.read_u64(base + n * 32 + 24) != 0);
        assert!(updated, "some arcs must gain flow");
    }

    #[test]
    fn art_winner_index_in_range() {
        let w = art();
        let p = w.eval_program();
        let mut i = Interp::new(&p);
        i.run(80_000_000).unwrap();
        // result = winner index + trunc(best sum); best sums are bounded
        // by INPUTS (all values in [0,1)), so result < neurons + 1024.
        let r = i.mem.read_u64(p.data_addr("result").unwrap());
        assert!(r < 48 + 1024, "{r}");
    }

    #[test]
    fn gzip_match_lengths_accumulate() {
        let w = gzip();
        let (result, _) = run(&w.profile_program());
        assert!(result > 0, "small alphabet guarantees some matches");
    }
}
