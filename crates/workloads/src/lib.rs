//! # spear-workloads — the 15 evaluation benchmarks
//!
//! Synthetic kernels in the SPEAR ISA whose memory-access structure
//! mirrors the paper's benchmark set (Table 1): six Atlantic Aerospace
//! Stressmarks, three DIS benchmarks, and six SPEC2000 codes. See
//! `DESIGN.md` for the substitution rationale per benchmark.
//!
//! Every workload provides separate *profiling* and *evaluation* inputs
//! (different seeds and sizes), matching the paper's methodology of
//! profiling on a different data set than the one simulated.

pub mod dis;
pub mod spec;
pub mod specsuite;
pub mod stressmark;
pub mod util;

pub use spec::{all, by_name, by_spec, Input, Suite, Workload, FIG9_SET};
