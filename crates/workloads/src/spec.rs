//! Workload registry: the 15 benchmarks of Table 1.
//!
//! Every workload is a kernel written in the SPEAR ISA whose *memory
//! behaviour* mirrors the corresponding paper benchmark (see the
//! substitution table in `DESIGN.md`). Each exposes a *profiling* build and
//! an *evaluation* build with different input seeds and sizes — the paper
//! "intentionally used different input data sets for profiling and
//! benchmark simulation" (§4.1).

use spear_isa::Program;

/// Benchmark suite of origin (Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Suite {
    /// Atlantic Aerospace Stressmark suite.
    Stressmark,
    /// Atlantic Aerospace Data-Intensive Systems benchmarks.
    Dis,
    /// SPEC CINT2000.
    SpecInt,
    /// SPEC CFP2000.
    SpecFp,
}

impl Suite {
    /// Display name used in Table 1.
    pub fn label(self) -> &'static str {
        match self {
            Suite::Stressmark => "Stressmark",
            Suite::Dis => "DIS Benchmarks",
            Suite::SpecInt => "SPEC CINT2000",
            Suite::SpecFp => "SPEC CFP2000",
        }
    }
}

/// Input parameters for a kernel build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Input {
    /// PRNG seed for data generation.
    pub seed: u64,
    /// Nominal iteration count (kernels scale their footprint with it).
    pub scale: u32,
}

/// One benchmark.
#[derive(Clone)]
pub struct Workload {
    /// Short name used throughout the evaluation (paper abbreviation).
    pub name: &'static str,
    /// Suite of origin.
    pub suite: Suite,
    /// One-line description of the kernel and which paper behaviour it
    /// mirrors.
    pub description: &'static str,
    /// Kernel builder.
    pub build: fn(Input) -> Program,
    /// Profiling input.
    pub profile_input: Input,
    /// Evaluation input.
    pub eval_input: Input,
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .field("suite", &self.suite)
            .finish()
    }
}

impl Workload {
    /// Build with the profiling input.
    pub fn profile_program(&self) -> Program {
        (self.build)(self.profile_input)
    }

    /// Build with the evaluation input.
    pub fn eval_program(&self) -> Program {
        (self.build)(self.eval_input)
    }

    /// Build with the evaluation input scaled `mult`× — the paper-scale
    /// knob. Only the *evaluation* run grows: profiling stays on its own
    /// (different, unscaled) input, preserving the paper's profile-vs-
    /// simulate data-set split at every scale.
    pub fn eval_program_scaled(&self, mult: u32) -> Program {
        let mut input = self.eval_input;
        input.scale = input.scale.saturating_mul(mult.max(1));
        (self.build)(input)
    }
}

/// All 15 benchmarks, in Table 1 order.
pub fn all() -> Vec<Workload> {
    vec![
        crate::stressmark::pointer(),
        crate::stressmark::update(),
        crate::stressmark::nbh(),
        crate::stressmark::tr(),
        crate::stressmark::matrix(),
        crate::stressmark::field(),
        crate::dis::dm(),
        crate::dis::ray(),
        crate::dis::fft(),
        crate::specsuite::gzip(),
        crate::specsuite::mcf(),
        crate::specsuite::vpr(),
        crate::specsuite::bzip2(),
        crate::specsuite::equake(),
        crate::specsuite::art(),
    ]
}

/// Look up a workload by its abbreviation.
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

/// Look up a workload by *spec*: either a plain abbreviation (`mcf`) or
/// an abbreviation with a scale suffix (`mcf@x100`), the campaign-level
/// `--scale` syntax for paper-scale instruction counts. Returns the base
/// workload and the evaluation-scale multiplier (1 for a plain name).
/// The full spec string stays the workload's identity downstream
/// (manifests, shard-cache keys, cell records, envelope file names).
pub fn by_spec(spec: &str) -> Option<(Workload, u32)> {
    match spec.split_once("@x") {
        None => by_name(spec).map(|w| (w, 1)),
        Some((name, mult)) => {
            let mult: u32 = mult.parse().ok().filter(|&m| m > 0)?;
            by_name(name).map(|w| (w, mult))
        }
    }
}

/// The six benchmarks of the Figure 9 latency sweep.
pub const FIG9_SET: [&str; 6] = ["pointer", "update", "nbh", "dm", "mcf", "vpr"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_workloads_with_unique_names() {
        let ws = all();
        assert_eq!(ws.len(), 15);
        let mut names: Vec<_> = ws.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 15);
    }

    #[test]
    fn suite_membership_matches_table1() {
        let ws = all();
        let count = |s: Suite| ws.iter().filter(|w| w.suite == s).count();
        assert_eq!(count(Suite::Stressmark), 6);
        assert_eq!(count(Suite::Dis), 3);
        assert_eq!(count(Suite::SpecInt) + count(Suite::SpecFp), 6);
    }

    #[test]
    fn profile_and_eval_inputs_differ() {
        for w in all() {
            assert_ne!(
                w.profile_input, w.eval_input,
                "{}: profiling must not use the evaluation input",
                w.name
            );
        }
    }

    #[test]
    fn fig9_set_exists() {
        for name in FIG9_SET {
            assert!(by_name(name).is_some(), "{name} missing");
        }
    }

    #[test]
    fn by_name_misses_unknown() {
        assert!(by_name("nonesuch").is_none());
    }

    #[test]
    fn by_spec_parses_scale_suffixes() {
        let (w, mult) = by_spec("mcf").expect("plain name");
        assert_eq!((w.name, mult), ("mcf", 1));
        let (w, mult) = by_spec("mcf@x100").expect("scaled name");
        assert_eq!((w.name, mult), ("mcf", 100));
        assert!(by_spec("mcf@x0").is_none(), "zero scale is invalid");
        assert!(by_spec("mcf@xbig").is_none(), "non-numeric scale");
        assert!(by_spec("nonesuch@x10").is_none(), "unknown base name");
    }

    #[test]
    fn scaled_eval_runs_longer_and_profiling_is_untouched() {
        let w = by_name("mcf").unwrap();
        let base_len = dynamic_len(&w.eval_program());
        let scaled_len = dynamic_len(&w.eval_program_scaled(4));
        assert!(
            scaled_len > base_len * 2,
            "4x scale must grow the evaluation run: {base_len} -> {scaled_len}"
        );
        // A scale of 1 is the identity.
        assert_eq!(dynamic_len(&w.eval_program_scaled(1)), base_len);
    }

    fn dynamic_len(p: &Program) -> u64 {
        let mut i = spear_exec::Interp::new(p);
        i.run(2_000_000_000).expect("workload executes");
        assert!(i.halted, "workload halts");
        i.icount
    }
}
