//! The three DIS (Data-Intensive Systems) benchmark kernels (Table 1).
//!
//! `dm` is hash-table probing with short collision chains (the database
//! access pattern); `ray` traverses a binary space partition with FP
//! plane compares (ray tracing's node walk); `fft` runs radix-2 butterfly
//! passes whose read-modify-write dependences drag the whole butterfly
//! into the backward slice — the paper reports a 1,129-instruction
//! p-thread for fft and a small slowdown.

use crate::spec::{Input, Suite, Workload};
use crate::util::{uniform_f64, uniform_indices};
use spear_isa::asm::Asm;
use spear_isa::reg::*;
use spear_isa::Program;

/// `dm` — open-hash probing over a 2 MiB bucket array.
///
/// Keys come from an in-register LCG (sliceable); each probe loads a
/// bucket head (random → misses) and walks a short chain with a
/// data-dependent exit (branch hit ratio ≈ 0.89 in Table 3, IPB ≈ 5).
pub fn dm() -> Workload {
    fn build(input: Input) -> Program {
        const BUCKETS: i64 = 1 << 17; // 2^17 × 16 B = 2 MiB
        let probes = input.scale as i64;
        let mut a = Asm::new();
        // Bucket: [value: u64, chain_len: u64]. Three quarters of the
        // buckets have no collision chain (len 0), so the chain-exit
        // branch is biased taken (Table 3 lists dm at 0.8907).
        let lens: Vec<u64> = uniform_indices(BUCKETS as usize, 12, input.seed ^ 0xD1)
            .into_iter()
            .map(|v| v.saturating_sub(8))
            .collect();
        let mut bytes = vec![0u8; (BUCKETS as usize) * 16];
        for i in 0..BUCKETS as usize {
            let v = (i as u64).wrapping_mul(0xA24BAED4963EE407 ^ input.seed);
            bytes[i * 16..i * 16 + 8].copy_from_slice(&v.to_le_bytes());
            bytes[i * 16 + 8..i * 16 + 16].copy_from_slice(&lens[i].to_le_bytes());
        }
        let base = a.alloc_bytes("buckets", &bytes);
        let result = a.reserve("result", 8);
        a.li(R1, base as i64);
        a.li(R3, probes);
        a.li(R4, 0); // acc
        a.li(R5, (input.seed | 1) as i64); // LCG state
        a.li(R8, 6364136223846793005);
        a.li(R9, 1442695040888963407);
        a.li(R15, 0); // previously fetched value (query chaining)
        a.label("loop");
        // Query stream A: data-chained (the next key depends on what the
        // previous lookup returned — a dependent query plan).
        a.mul(R5, R5, R8); // slice
        a.add(R5, R5, R9); // slice
        a.srli(R6, R5, 17); // slice
        a.xor(R6, R6, R15); // slice: chained on fetched data
        a.andi(R6, R6, BUCKETS - 1); // slice: bucket index
        a.slli(R6, R6, 4); // slice: ×16 bytes
        a.add(R6, R1, R6); // slice: bucket address
        a.ld(R7, R6, 0); // d-load A: bucket value
        a.mv(R15, R7); // slice: carry the fetched value forward
        a.ld(R10, R6, 8); // chain length (same block)
        a.add(R4, R4, R7);
        // Query stream B: independent keys (a scan-driven lookup) — the
        // prefetchable half of the probe mix.
        a.srli(R13, R5, 37); // slice
        a.andi(R13, R13, BUCKETS - 1); // slice
        a.slli(R13, R13, 4); // slice
        a.add(R13, R1, R13); // slice
        a.ld(R16, R13, 0); // d-load B: independent bucket
        a.add(R4, R4, R16);
        // Walk the chain: successive buckets, data-dependent trip count.
        a.label("chain");
        a.beq(R10, R0, "done"); // data-dependent exit
        a.addi(R6, R6, 16);
        a.andi(R11, R6, (BUCKETS * 16) - 1); // wrap
        a.add(R11, R1, R11);
        a.ld(R7, R11, 0);
        a.add(R4, R4, R7);
        a.addi(R10, R10, -1);
        a.j("chain");
        a.label("done");
        a.addi(R3, R3, -1);
        a.bne(R3, R0, "loop");
        a.li(R6, result as i64);
        a.sd(R4, R6, 0);
        a.halt();
        a.finish().unwrap()
    }
    Workload {
        name: "dm",
        suite: Suite::Dis,
        description: "hash-table probes with short data-dependent collision chains",
        build,
        profile_input: Input {
            seed: 71,
            scale: 4_000,
        },
        eval_input: Input {
            seed: 7107,
            scale: 12_000,
        },
    }
}

/// `ray` — binary space-partition descent with FP plane compares.
///
/// Each "ray" walks from the root choosing children by comparing an FP
/// coordinate against the node's split plane; nodes live in a 2 MiB array
/// so deep nodes miss. Branch hit ratio lands near Table 3's 0.956: the
/// descent direction is data-dependent but biased.
pub fn ray() -> Workload {
    fn build(input: Input) -> Program {
        const NODES: i64 = 1 << 16; // 2^16 × 32 B = 2 MiB
        const DEPTH: i64 = 12;
        let rays = input.scale as i64;
        let mut a = Asm::new();
        // Node: [split: f64, payload: u64, pad×2]. Children of i are
        // 2i+1, 2i+2 (implicit heap layout), taken modulo the pool.
        let splits = uniform_f64(NODES as usize, input.seed ^ 0x9A);
        let mut bytes = vec![0u8; (NODES as usize) * 32];
        for i in 0..NODES as usize {
            // Bias the split so "go left" is ~70% (predictable-ish).
            let s = splits[i] * 0.7;
            bytes[i * 32..i * 32 + 8].copy_from_slice(&s.to_le_bytes());
            let payload = (i as u64).wrapping_mul(0x8CB92BA72F3D8DD7);
            bytes[i * 32 + 8..i * 32 + 16].copy_from_slice(&payload.to_le_bytes());
        }
        let base = a.alloc_bytes("nodes", &bytes);
        let result = a.reserve("result", 8);
        a.li(R1, base as i64);
        a.li(R3, rays);
        a.li(R4, 0); // acc
        a.li(R5, (input.seed | 1) as i64); // LCG for the ray coordinate
        a.li(R8, 6364136223846793005);
        a.li(R9, 1442695040888963407);
        a.li(R12, NODES - 1);
        a.li(R15, 4_503_599_627_370_496); // 2^52 for u64→[0,1) conversion
        a.label("ray");
        a.mul(R5, R5, R8);
        a.add(R5, R5, R9);
        a.srli(R6, R5, 12);
        a.rem(R6, R6, R15);
        a.fcvt_d_l(F1, R6);
        a.fcvt_d_l(F2, R15);
        a.fdiv(F1, F1, F2); // ray coordinate in [0, 1)
        a.li(R2, 0); // node index
        a.li(R7, DEPTH);
        a.label("descend");
        a.slli(R10, R2, 5); // slice: node byte offset
        a.add(R10, R1, R10); // slice: node address
        a.fld(F3, R10, 0); // d-load: split plane
        a.ld(R11, R10, 8); // payload (same block)
        a.add(R4, R4, R11);
        a.slli(R2, R2, 1); // left child 2i+1
        a.addi(R2, R2, 1);
        a.flt(R13, F1, F3); // which side?
        a.bne(R13, R0, "left"); // ~70% taken
        a.addi(R2, R2, 1); // right child 2i+2
        a.label("left");
        a.and(R2, R2, R12); // wrap into the pool
        a.addi(R7, R7, -1);
        a.bne(R7, R0, "descend");
        a.addi(R3, R3, -1);
        a.bne(R3, R0, "ray");
        a.li(R6, result as i64);
        a.sd(R4, R6, 0);
        a.halt();
        a.finish().unwrap()
    }
    Workload {
        name: "ray",
        suite: Suite::Dis,
        description: "BSP-tree descent with FP split compares over a 2 MiB node pool",
        build,
        profile_input: Input {
            seed: 83,
            scale: 1_000,
        },
        eval_input: Input {
            seed: 8311,
            scale: 2_600,
        },
    }
}

/// `fft` — radix-2 decimation-in-time butterfly passes.
///
/// The butterflies read-modify-write the data array, so the profiled
/// store→load dependences pull the *entire* butterfly arithmetic into the
/// backward slice — the mechanism behind the paper's 1,129-instruction
/// fft p-thread (and its slight slowdown: a p-thread nearly as heavy as
/// the main loop cannot run ahead).
pub fn fft() -> Workload {
    fn build(input: Input) -> Program {
        let log_n = 12u32.min(10 + input.scale); // scale 1 → 2^11, 2+ → 2^12
        let n: i64 = 1 << log_n;
        let mut a = Asm::new();
        let re = uniform_f64(n as usize, input.seed ^ 0x0F);
        let im = uniform_f64(n as usize, input.seed ^ 0xF0);
        let re_b = a.alloc_f64("re", &re);
        let im_b = a.alloc_f64("im", &im);
        // Twiddle tables, one entry per butterfly group of each stage.
        let tw_re: Vec<f64> = (0..n / 2)
            .map(|k| (-2.0 * std::f64::consts::PI * k as f64 / n as f64).cos())
            .collect();
        let tw_im: Vec<f64> = (0..n / 2)
            .map(|k| (-2.0 * std::f64::consts::PI * k as f64 / n as f64).sin())
            .collect();
        let twr_b = a.alloc_f64("twr", &tw_re);
        let twi_b = a.alloc_f64("twi", &tw_im);
        let result = a.reserve("result", 8);

        a.li(R1, re_b as i64);
        a.li(R2, im_b as i64);
        a.li(R20, twr_b as i64);
        a.li(R21, twi_b as i64);
        a.li(R3, 1); // half = 1, doubling per stage
        a.li(R15, n);
        a.label("stage");
        a.li(R4, 0); // group start
        a.label("group");
        // twiddle index = (group offset scaled) — stride n/(2*half).
        a.li(R5, 0); // j within group
        a.label("fly");
        // i0 = start + j ; i1 = i0 + half
        a.add(R6, R4, R5);
        a.add(R7, R6, R3);
        // twiddle k = j * (n / (2*half))
        a.slli(R8, R3, 1);
        a.div(R8, R15, R8);
        a.mul(R8, R5, R8);
        a.slli(R8, R8, 3);
        a.add(R9, R20, R8);
        a.fld(F1, R9, 0); // w.re
        a.add(R9, R21, R8);
        a.fld(F2, R9, 0); // w.im
        a.slli(R10, R6, 3);
        a.slli(R11, R7, 3);
        a.add(R12, R1, R10); // &re[i0]
        a.add(R13, R1, R11); // &re[i1] — the d-load: stride `half` grows
        a.fld(F3, R12, 0); // re[i0]
        a.fld(F4, R13, 0); // re[i1]
        a.add(R16, R2, R10);
        a.add(R17, R2, R11);
        a.fld(F5, R16, 0); // im[i0]
        a.fld(F6, R17, 0); // im[i1]
                           // t = w * x1  (complex)
        a.fmul(F7, F1, F4);
        a.fmul(F8, F2, F6);
        a.fsub(F7, F7, F8); // t.re
        a.fmul(F9, F1, F6);
        a.fmul(F10, F2, F4);
        a.fadd(F9, F9, F10); // t.im
                             // x1 = x0 - t ; x0 = x0 + t
        a.fsub(F11, F3, F7);
        a.fsd(F11, R13, 0);
        a.fadd(F12, F3, F7);
        a.fsd(F12, R12, 0);
        a.fsub(F13, F5, F9);
        a.fsd(F13, R17, 0);
        a.fadd(F14, F5, F9);
        a.fsd(F14, R16, 0);
        a.addi(R5, R5, 1);
        a.blt(R5, R3, "fly");
        // next group: start += 2*half
        a.slli(R8, R3, 1);
        a.add(R4, R4, R8);
        a.blt(R4, R15, "group");
        a.slli(R3, R3, 1); // half *= 2
        a.blt(R3, R15, "stage");
        // Checksum: sum |re| over the array as raw bits.
        a.li(R4, 0);
        a.li(R5, 0);
        a.label("sum");
        a.slli(R6, R5, 3);
        a.add(R6, R1, R6);
        a.ld(R7, R6, 0);
        a.add(R4, R4, R7);
        a.addi(R5, R5, 1);
        a.blt(R5, R15, "sum");
        a.li(R6, result as i64);
        a.sd(R4, R6, 0);
        a.halt();
        a.finish().unwrap()
    }
    Workload {
        name: "fft",
        suite: Suite::Dis,
        description: "radix-2 FFT butterflies; RMW dependences make the slice huge",
        build,
        profile_input: Input { seed: 97, scale: 1 },
        eval_input: Input {
            seed: 9713,
            scale: 2,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spear_exec::{Interp, Stop};

    fn run(program: &Program) -> (u64, u64) {
        let mut i = Interp::new(program);
        assert_eq!(i.run(80_000_000).unwrap(), Stop::Halted);
        let result = i.mem.read_u64(program.data_addr("result").unwrap());
        (result, i.icount)
    }

    #[test]
    fn all_dis_kernels_halt_with_results() {
        for w in [dm(), ray(), fft()] {
            let (result, icount) = run(&w.eval_program());
            assert_ne!(result, 0, "{}", w.name);
            assert!(icount > 50_000, "{}: {icount}", w.name);
            assert!(icount < 3_000_000, "{}: {icount}", w.name);
        }
    }

    #[test]
    fn fft_matches_rust_reference() {
        let w = fft();
        let input = w.eval_input;
        let (result, _) = run(&(w.build)(input));
        // Mirror the kernel exactly: radix-2 DIT without bit-reversal,
        // twiddle from tables, then sum the raw bit patterns of `re`.
        let log_n = 12u32.min(10 + input.scale);
        let n = 1usize << log_n;
        let mut re = uniform_f64(n, input.seed ^ 0x0F);
        let mut im = uniform_f64(n, input.seed ^ 0xF0);
        let tw_re: Vec<f64> = (0..n / 2)
            .map(|k| (-2.0 * std::f64::consts::PI * k as f64 / n as f64).cos())
            .collect();
        let tw_im: Vec<f64> = (0..n / 2)
            .map(|k| (-2.0 * std::f64::consts::PI * k as f64 / n as f64).sin())
            .collect();
        let mut half = 1usize;
        while half < n {
            let mut start = 0usize;
            while start < n {
                for j in 0..half {
                    let i0 = start + j;
                    let i1 = i0 + half;
                    let k = j * (n / (2 * half));
                    let (wr, wi) = (tw_re[k], tw_im[k]);
                    let tr = wr * re[i1] - wi * im[i1];
                    let ti = wr * im[i1] + wi * re[i1];
                    let (r0, i0v) = (re[i0], im[i0]);
                    re[i1] = r0 - tr;
                    re[i0] = r0 + tr;
                    im[i1] = i0v - ti;
                    im[i0] = i0v + ti;
                }
                start += 2 * half;
            }
            half *= 2;
        }
        let golden: u64 = re
            .iter()
            .fold(0u64, |acc, &x| acc.wrapping_add(x.to_bits()));
        assert_eq!(result, golden);
    }

    #[test]
    fn dm_chains_have_variable_length() {
        // Structural check: instruction count exceeds probes × fixed-body
        // size, proving some chains were walked.
        let w = dm();
        let (_, icount) = run(&w.profile_program());
        let fixed = 4_000u64 * 16;
        assert!(
            icount > fixed,
            "chain walks must add work: {icount} <= {fixed}"
        );
    }
}
