//! Shared input-generation helpers for the workload kernels.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic PRNG for input generation.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A uniformly random single-cycle permutation of `0..n` (Sattolo's
/// algorithm): `perm[i]` is the successor of `i`, and following it visits
/// every element exactly once before returning. Used to build pointer
/// chains that defeat every stride prefetcher and hit a new cache set on
/// each hop.
pub fn ring_permutation(n: usize, seed: u64) -> Vec<usize> {
    assert!(n >= 2);
    let mut r = rng(seed);
    let mut items: Vec<usize> = (0..n).collect();
    // Sattolo: like Fisher–Yates but j < i strictly, yielding one cycle.
    for i in (1..n).rev() {
        let j = r.random_range(0..i);
        items.swap(i, j);
    }
    // `items` is a cyclic order; turn it into successor pointers.
    let mut next = vec![0usize; n];
    for w in 0..n {
        next[items[w]] = items[(w + 1) % n];
    }
    next
}

/// `count` uniform values below `bound`.
pub fn uniform_indices(count: usize, bound: usize, seed: u64) -> Vec<u64> {
    let mut r = rng(seed);
    (0..count)
        .map(|_| r.random_range(0..bound) as u64)
        .collect()
}

/// `count` random f64 values in [0, 1).
pub fn uniform_f64(count: usize, seed: u64) -> Vec<f64> {
    let mut r = rng(seed);
    (0..count).map(|_| r.random::<f64>()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_a_single_cycle() {
        for n in [2, 3, 10, 257, 1024] {
            let next = ring_permutation(n, 42);
            let mut seen = vec![false; n];
            let mut cur = 0;
            for _ in 0..n {
                assert!(!seen[cur], "revisited {cur} early (n={n})");
                seen[cur] = true;
                cur = next[cur];
            }
            assert_eq!(cur, 0, "cycle closes after n hops");
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn ring_deterministic_per_seed() {
        assert_eq!(ring_permutation(64, 7), ring_permutation(64, 7));
        assert_ne!(ring_permutation(64, 7), ring_permutation(64, 8));
    }

    #[test]
    fn uniform_indices_in_bounds() {
        let v = uniform_indices(1000, 37, 5);
        assert!(v.iter().all(|&x| x < 37));
    }
}
