//! The six Atlantic Aerospace Stressmark kernels (Table 1).
//!
//! Each kernel mirrors the memory behaviour the paper relies on for its
//! Stressmark results: `pointer`/`update` are pointer-chasing with a
//! per-node work body; `nbh` gathers neighborhoods at computed offsets;
//! `tr` is a partial transitive-closure (Floyd–Warshall) sweep with a
//! data-dependent update branch (the low branch hit ratio that makes tr
//! *lose* under SPEAR); `matrix` walks matrix columns against the storage
//! order (the long-IFQ winner, ×1.45 in Table 3); `field` streams a
//! cache-resident field (too few misses to benefit — Figure 6).

use crate::spec::{Input, Suite, Workload};
use crate::util::{ring_permutation, uniform_indices};
use spear_isa::asm::Asm;
use spear_isa::reg::*;
use spear_isa::Program;

/// Node size in bytes for the pointer-chase pools (one per L2 block).
const NODE_BYTES: usize = 64;

fn build_ring(a: &mut Asm, name: &str, nodes: usize, seed: u64) -> u64 {
    build_ring_with_indices(a, name, nodes, seed, 0)
}

/// Like [`build_ring`], with payload word 2 holding a table index below
/// `index_bound` (0 disables).
fn build_ring_with_indices(
    a: &mut Asm,
    name: &str,
    nodes: usize,
    seed: u64,
    index_bound: u64,
) -> u64 {
    let next = ring_permutation(nodes, seed);
    let mut bytes = vec![0u8; nodes * NODE_BYTES];
    for (i, &n) in next.iter().enumerate() {
        // next pointer at +0 (relative byte offset of the successor node
        // from the pool base; the kernel adds the base register).
        let off = (n * NODE_BYTES) as u64;
        bytes[i * NODE_BYTES..i * NODE_BYTES + 8].copy_from_slice(&off.to_le_bytes());
        // payload at +8.
        let payload = (i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 16;
        bytes[i * NODE_BYTES + 8..i * NODE_BYTES + 16].copy_from_slice(&payload.to_le_bytes());
        if index_bound > 0 {
            let idx = (i as u64).wrapping_mul(0xD1342543DE82EF95) % index_bound;
            bytes[i * NODE_BYTES + 16..i * NODE_BYTES + 24].copy_from_slice(&idx.to_le_bytes());
        }
    }
    a.alloc_bytes(name, &bytes)
}

/// `pointer` — four concurrent pointer chains with a hashing work body.
///
/// The Stressmark processes many pointers; four independent chains let
/// both the out-of-order window and the p-thread overlap misses across
/// chains (a single chain is irreducibly serial, and neither the paper's
/// machine nor ours could speed it up). Chains start a quarter-ring apart
/// so they never touch the same node within a run.
///
/// Registers: r11/r12/r13/r14 cursors, r2 base, r3 steps, r4 acc.
pub fn pointer() -> Workload {
    // The pool is sized just beyond the L2 (384 KiB vs 256 KiB): after a
    // warmup round the chase itself runs at L2 speed, cheap enough for
    // the p-thread to race ahead of the main thread — whose per-hop
    // translation-table gathers (2 MiB, always missing) are the expensive
    // part the p-thread prefetches.
    const NODES: usize = 6144;
    const CHAINS: [u8; 4] = [11, 12, 13, 14];
    fn build(input: Input) -> Program {
        let steps = input.scale as i64; // per-chain hops
        const TABLE_ELEMS: u64 = 1 << 18; // 2 MiB translation table
        let mut a = Asm::new();
        let base = build_ring_with_indices(&mut a, "pool", NODES, input.seed, TABLE_ELEMS);
        let table: Vec<u64> = (0..TABLE_ELEMS)
            .map(|i| i.wrapping_mul(0xA0761D6478BD642F ^ input.seed))
            .collect();
        let table_b = a.alloc_u64("table", &table);
        let result = a.reserve("result", 8);
        a.li(R2, base as i64);
        a.li(R7, table_b as i64);
        a.li(R3, steps);
        a.li(R4, 0);
        // Spread the four cursors a quarter of the ring apart.
        let next = ring_permutation(NODES, input.seed);
        let mut cur = 0usize;
        for (k, &reg) in CHAINS.iter().enumerate() {
            a.li(
                spear_isa::Reg::int(reg),
                base as i64 + (cur * NODE_BYTES) as i64,
            );
            for _ in 0..NODES / 4 {
                cur = next[cur];
            }
            let _ = k;
        }
        a.label("loop");
        for &reg in &CHAINS {
            let c = spear_isa::Reg::int(reg);
            a.ld(R5, c, 8); // payload word
            a.add(R4, R4, R5);
            // Table lookup keyed by the node (the Stressmark consults a
            // translation table per hop): a dependent gather the p-thread
            // prefetches one hop behind its own chase.
            a.ld(R6, c, 16); // slice: table index stored at the node
            a.slli(R6, R6, 3); // slice
            a.add(R6, R7, R6); // slice: table address
            a.ld(R5, R6, 0); // d-load: table cell (random miss)
            a.add(R4, R4, R5);
            a.ld(R5, c, 0); // d-load: next offset
            a.add(c, R2, R5); // chase
        }
        // Work body: a small hash round (mirrored by the Rust reference).
        a.slli(R6, R4, 7);
        a.xor(R4, R4, R6);
        a.srli(R6, R4, 9);
        a.xor(R4, R4, R6);
        a.addi(R3, R3, -1);
        a.bne(R3, R0, "loop");
        a.li(R6, result as i64);
        a.sd(R4, R6, 0);
        a.halt();
        a.finish().unwrap()
    }
    Workload {
        name: "pointer",
        suite: Suite::Stressmark,
        description: "four concurrent pointer chains over a 2 MiB ring with a hash body",
        build,
        profile_input: Input {
            seed: 11,
            scale: 3_000,
        },
        eval_input: Input {
            seed: 1101,
            scale: 7_000,
        },
    }
}

/// Rust reference for `pointer` (used by the golden-value test).
pub fn pointer_reference(input: Input) -> u64 {
    let nodes = 6144;
    let next = ring_permutation(nodes, input.seed);
    let payload: Vec<u64> = (0..nodes as u64)
        .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15) >> 16)
        .collect();
    // Chain start positions: 0, N/4, N/2, 3N/4 hops along the ring.
    let mut curs = [0usize; 4];
    let mut cur = 0usize;
    for (k, slot) in curs.iter_mut().enumerate() {
        *slot = cur;
        for _ in 0..nodes / 4 {
            cur = next[cur];
        }
        let _ = k;
    }
    let table_elems: u64 = 1 << 18;
    let table: Vec<u64> = (0..table_elems)
        .map(|i| i.wrapping_mul(0xA0761D6478BD642F ^ input.seed))
        .collect();
    let mut acc = 0u64;
    for _ in 0..input.scale {
        for c in curs.iter_mut() {
            acc = acc.wrapping_add(payload[*c]);
            let idx = (*c as u64).wrapping_mul(0xD1342543DE82EF95) % table_elems;
            acc = acc.wrapping_add(table[idx as usize]);
            *c = next[*c];
        }
        acc ^= acc << 7;
        acc ^= acc >> 9;
    }
    acc
}

/// `update` — pointer chasing that also *writes* each node and branches on
/// the loaded value (low branch hit ratio, 0.8865 in Table 3).
pub fn update() -> Workload {
    fn build(input: Input) -> Program {
        let nodes = 1 << 15;
        let steps = input.scale as i64;
        let mut a = Asm::new();
        let base = build_ring(&mut a, "pool", nodes, input.seed);
        let result = a.reserve("result", 8);
        a.li(R2, base as i64);
        a.mv(R1, R2);
        a.li(R3, steps);
        a.li(R4, 0);
        a.label("loop");
        a.ld(R5, R1, 8); // payload
        a.andi(R6, R5, 1);
        a.beq(R6, R0, "even"); // data-dependent: ~50/50
        a.addi(R5, R5, 3);
        a.j("join");
        a.label("even");
        a.slli(R5, R5, 1);
        a.label("join");
        a.sd(R5, R1, 8); // update the node (dirty lines, writebacks)
        a.add(R4, R4, R5);
        a.ld(R7, R1, 0); // d-load: next offset
        a.add(R1, R2, R7);
        a.addi(R3, R3, -1);
        a.bne(R3, R0, "loop");
        a.li(R6, result as i64);
        a.sd(R4, R6, 0);
        a.halt();
        a.finish().unwrap()
    }
    Workload {
        name: "update",
        suite: Suite::Stressmark,
        description: "pointer chasing with read-modify-write nodes and a data-dependent branch",
        build,
        profile_input: Input {
            seed: 23,
            scale: 4_000,
        },
        eval_input: Input {
            seed: 2302,
            scale: 12_000,
        },
    }
}

/// Rust reference for `update` (used by the golden-value test).
pub fn update_reference(input: Input) -> u64 {
    let nodes = 1 << 15;
    let next = ring_permutation(nodes, input.seed);
    let mut payload: Vec<u64> = (0..nodes as u64)
        .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15) >> 16)
        .collect();
    let mut cur = 0usize;
    let mut acc = 0u64;
    for _ in 0..input.scale {
        let mut v = payload[cur];
        if v & 1 != 0 {
            v = v.wrapping_add(3);
        } else {
            v <<= 1;
        }
        payload[cur] = v;
        acc = acc.wrapping_add(v);
        cur = next[cur];
    }
    acc
}

/// Rust reference for `nbh` (used by the golden-value test).
pub fn nbh_reference(input: Input) -> u64 {
    const W: u64 = 512;
    const H: u64 = 512;
    let grid: Vec<u64> = (0..W * (H + 2))
        .map(|i| i.wrapping_mul(0x2545F4914F6CDD1D ^ input.seed))
        .collect();
    let mut acc = 0u64;
    let mut lcg = input.seed | 1;
    for _ in 0..input.scale {
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let idx = ((lcg >> 11) & (W * H - 1)) + W;
        acc = acc.wrapping_add(grid[idx as usize]);
        acc = acc.wrapping_add(grid[idx as usize + 1]);
        acc = acc.wrapping_add(grid[(idx - W) as usize]);
        acc = acc.wrapping_add(grid[(idx + W) as usize]);
    }
    acc
}

/// `nbh` (neighborhood) — gathers 2D neighborhoods at computed positions.
///
/// The center index comes from an in-register linear-congruential update,
/// so the whole address computation is sliceable; the four neighbor loads
/// of each visit miss on a 2 MiB grid. Branches are only loop control
/// (hit ratio ≈ 0.996 in Table 3).
pub fn nbh() -> Workload {
    fn build(input: Input) -> Program {
        const W: i64 = 512; // grid width in u64 elements
        const H: i64 = 512; // 512×512×8 = 2 MiB of visited cells
        let iters = input.scale as i64;
        let mut a = Asm::new();
        // Grid initialized with a cheap hash of the element index; two
        // pad rows so i±W of any visited index stays in range without a
        // division in the (sliceable) address chain.
        let grid: Vec<u64> = (0..(W * (H + 2)) as u64)
            .map(|i| i.wrapping_mul(0x2545F4914F6CDD1D ^ input.seed))
            .collect();
        let base = a.alloc_u64("grid", &grid);
        let result = a.reserve("result", 8);
        a.li(R1, base as i64);
        a.li(R3, iters);
        a.li(R4, 0); // acc
        a.li(R5, (input.seed | 1) as i64); // LCG state
        a.li(R8, 6364136223846793005); // LCG multiplier
        a.li(R9, 1442695040888963407); // LCG increment
        a.label("loop");
        a.mul(R5, R5, R8); // slice: LCG step
        a.add(R5, R5, R9); // slice
        a.srli(R6, R5, 11); // slice: top bits are the random part
        a.andi(R6, R6, W * H - 1); // slice: bound (power of two)
        a.addi(R6, R6, W); // slice: skip row 0
        a.slli(R6, R6, 3); // slice: byte offset
        a.add(R6, R1, R6); // slice: center address
        a.ld(R7, R6, 0); // d-load: center
        a.add(R4, R4, R7);
        a.ld(R7, R6, 8); // east (same block half the time)
        a.add(R4, R4, R7);
        a.ld(R7, R6, -8 * W); // north (different row: misses)
        a.add(R4, R4, R7);
        a.ld(R7, R6, 8 * W); // south (different row: misses)
        a.add(R4, R4, R7);
        a.addi(R3, R3, -1);
        a.bne(R3, R0, "loop");
        a.li(R6, result as i64);
        a.sd(R4, R6, 0);
        a.halt();
        a.finish().unwrap()
    }
    Workload {
        name: "nbh",
        suite: Suite::Stressmark,
        description: "2D neighborhood gathers at LCG-computed positions on a 2 MiB grid",
        build,
        profile_input: Input {
            seed: 31,
            scale: 5_000,
        },
        eval_input: Input {
            seed: 3103,
            scale: 15_000,
        },
    }
}

/// `tr` (transitive closure) — partial Floyd–Warshall sweeps.
///
/// The j-loop is unrolled ×4 with branchless minimum updates (multiply
/// selects) plus one data-dependent row-update branch, giving the
/// Table 3 profile of tr: long stretches between branches (high IPB) but
/// a poorly predicted branch when one does appear. The dense load stream
/// keeps both memory ports busy, so the p-thread's priority prefetches
/// steal exactly the resource the main thread needs — the contention
/// that dedicated functional units (the `.sf` models) relieve (Figure 7
/// reports tr gaining 33.2% from `.sf`).
pub fn tr() -> Workload {
    fn build(input: Input) -> Program {
        // 128×128×8 = 128 KiB: resident in the 256 KiB L2 but 4× the L1,
        // so every L1 miss is a cheap, overlappable L2 hit. The baseline
        // runs fast and *port-bound* — exactly the regime where a shared
        // p-thread's extra memory traffic hurts and dedicated units help.
        const N: i64 = 128;
        // Floyd-Warshall pivots index rows of w, so k must stay below N;
        // scaled inputs (`tr@xN`) cap here instead of walking off the
        // 128 KiB image.
        let k_rounds = (input.scale as i64).min(N);
        let mut a = Asm::new();
        let w: Vec<u64> = uniform_indices((N * N) as usize, 4_000, input.seed)
            .into_iter()
            .map(|v| v + 1)
            .collect();
        let base = a.alloc_u64("w", &w);
        let result = a.reserve("result", 8);
        a.li(R1, base as i64);
        a.li(R2, 0); // k
        a.li(R15, k_rounds);
        a.li(R14, N);
        a.label("kloop");
        a.li(R3, 0); // i
        a.label("iloop");
        a.mul(R4, R3, R14);
        a.slli(R4, R4, 3);
        a.add(R4, R1, R4); // &w[i][0]
        a.mul(R5, R2, R14);
        a.slli(R5, R5, 3);
        a.add(R5, R1, R5); // &w[k][0]
        a.slli(R6, R2, 3);
        a.add(R6, R4, R6);
        a.ld(R6, R6, 0); // w[i][k], j-loop invariant
        a.li(R7, 0); // j
        a.li(R28, 0); // row-updates counter
        a.label("jloop");
        for u in 0..8i64 {
            // cand = w[i][k] + w[k][j+u]; w[i][j+u] = min(old, cand),
            // branchless: min = cand + (old-cand)*(old<cand). Sixteen
            // loads and eight stores per group keep both memory ports
            // saturated — the shared-resource pressure behind tr's
            // Figure 7 behaviour.
            a.ld(R8, R4, 8 * u); // old (d-load: streams w[i][*])
            a.ld(R9, R5, 8 * u); // w[k][j+u] (d-load: streams w[k][*])
            a.add(R10, R6, R9); // cand
            a.slt(R11, R8, R10); // old < cand ?
            a.sub(R12, R8, R10);
            a.mul(R12, R12, R11); // (old-cand) if old<cand else 0
            a.add(R10, R10, R12); // min
            a.sd(R10, R4, 8 * u);
            a.xor(R28, R28, R12);
        }
        // One data-dependent branch per unrolled group: did the last
        // element keep its old value? (~biased, data-driven).
        a.beq(R12, R0, "nochg");
        a.addi(R28, R28, 1);
        a.label("nochg");
        a.addi(R4, R4, 64);
        a.addi(R5, R5, 64);
        a.addi(R7, R7, 8);
        a.blt(R7, R14, "jloop");
        a.addi(R3, R3, 1);
        a.blt(R3, R14, "iloop");
        a.addi(R2, R2, 1);
        a.blt(R2, R15, "kloop");
        // Checksum the first row.
        a.li(R3, 0);
        a.li(R4, 0);
        a.mv(R5, R1);
        a.label("sum");
        a.ld(R6, R5, 0);
        a.add(R4, R4, R6);
        a.addi(R5, R5, 8);
        a.addi(R3, R3, 1);
        a.blt(R3, R14, "sum");
        a.add(R4, R4, R28);
        a.li(R6, result as i64);
        a.sd(R4, R6, 0);
        a.halt();
        a.finish().unwrap()
    }
    Workload {
        name: "tr",
        suite: Suite::Stressmark,
        description:
            "partial Floyd-Warshall, unrolled, port-saturating with a data-dependent branch",
        build,
        profile_input: Input { seed: 47, scale: 2 },
        eval_input: Input {
            seed: 4701,
            scale: 5,
        },
    }
}

/// `matrix` — column walks against row-major storage.
///
/// Every element access strides one full row (4 KiB), so each one misses
/// while the address chain is two adds — the deeper the IFQ, the further
/// ahead the p-thread prefetches. This is the Table 3 long-IFQ winner.
pub fn matrix() -> Workload {
    fn build(input: Input) -> Program {
        const ROWS: i64 = 512;
        const COLS: i64 = 512; // 512×512×8 = 2 MiB
        let col_count = input.scale as i64; // columns visited
        let mut a = Asm::new();
        let m: Vec<u64> = (0..(ROWS * COLS) as u64)
            .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15 ^ input.seed) >> 8)
            .collect();
        let base = a.alloc_u64("m", &m);
        let result = a.reserve("result", 8);
        a.li(R1, base as i64);
        a.li(R2, 0); // column index
        a.li(R3, col_count);
        a.li(R4, 0); // acc
        a.li(R10, 8 * COLS); // row stride in bytes
        a.label("cloop");
        // &m[0][c]
        a.rem(R5, R2, R10); // wrap the column (bytes) — stays sliceable
        a.andi(R5, R5, !7);
        a.add(R5, R1, R5);
        a.li(R6, ROWS);
        a.label("rloop");
        a.ld(R7, R5, 0); // d-load: column walk, misses every time
        a.add(R4, R4, R7);
        a.xor(R8, R4, R7);
        a.srli(R8, R8, 3);
        a.add(R4, R4, R8);
        a.add(R5, R5, R10); // next row
        a.addi(R6, R6, -1);
        a.bne(R6, R0, "rloop");
        a.addi(R2, R2, 24);
        a.addi(R3, R3, -1);
        a.bne(R3, R0, "cloop");
        a.li(R6, result as i64);
        a.sd(R4, R6, 0);
        a.halt();
        a.finish().unwrap()
    }
    Workload {
        name: "matrix",
        suite: Suite::Stressmark,
        description: "column walks over a row-major 2 MiB matrix (every access misses)",
        build,
        profile_input: Input {
            seed: 59,
            scale: 20,
        },
        eval_input: Input {
            seed: 5905,
            scale: 60,
        },
    }
}

/// `field` — repeated streaming over a 16 KiB field.
///
/// The working set fits in L1, so the miss rate is too low for
/// pre-execution to matter (the paper's explanation for field's flat
/// result). Unrolled ×8 for the high IPB of Table 3 (39.3).
pub fn field() -> Workload {
    fn build(input: Input) -> Program {
        const ELEMS: i64 = 2048; // 16 KiB
        let passes = input.scale as i64;
        let mut a = Asm::new();
        let f: Vec<u64> = (0..ELEMS as u64)
            .map(|i| i.wrapping_mul(0xD1342543DE82EF95 ^ input.seed))
            .collect();
        let base = a.alloc_u64("field", &f);
        let result = a.reserve("result", 8);
        a.li(R3, passes);
        a.li(R4, 0);
        a.label("pass");
        a.li(R1, base as i64);
        a.li(R2, ELEMS / 8);
        a.label("loop");
        for k in 0..8 {
            a.ld(R5, R1, 8 * k);
            if k % 2 == 0 {
                a.add(R4, R4, R5);
            } else {
                a.xor(R4, R4, R5);
            }
        }
        a.addi(R1, R1, 64);
        a.addi(R2, R2, -1);
        a.bne(R2, R0, "loop");
        a.addi(R3, R3, -1);
        a.bne(R3, R0, "pass");
        a.li(R6, result as i64);
        a.sd(R4, R6, 0);
        a.halt();
        a.finish().unwrap()
    }
    Workload {
        name: "field",
        suite: Suite::Stressmark,
        description: "repeated unrolled streaming over an L1-resident 16 KiB field",
        build,
        profile_input: Input {
            seed: 61,
            scale: 12,
        },
        eval_input: Input {
            seed: 6101,
            scale: 40,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spear_exec::{Interp, Stop};

    fn run(program: &Program) -> (u64, u64) {
        let mut i = Interp::new(program);
        assert_eq!(i.run(80_000_000).unwrap(), Stop::Halted);
        let result = i.mem.read_u64(program.data_addr("result").unwrap());
        (result, i.icount)
    }

    #[test]
    fn pointer_matches_rust_reference() {
        let w = pointer();
        for input in [w.profile_input, w.eval_input] {
            let (result, _) = run(&(w.build)(input));
            assert_eq!(result, pointer_reference(input));
        }
    }

    #[test]
    fn update_matches_rust_reference() {
        let w = update();
        for input in [w.profile_input, w.eval_input] {
            let (result, _) = run(&(w.build)(input));
            assert_eq!(result, update_reference(input));
        }
    }

    #[test]
    fn nbh_matches_rust_reference() {
        let w = nbh();
        for input in [w.profile_input, w.eval_input] {
            let (result, _) = run(&(w.build)(input));
            assert_eq!(result, nbh_reference(input));
        }
    }

    #[test]
    fn all_stressmarks_halt_and_produce_results() {
        for w in [pointer(), update(), nbh(), tr(), matrix(), field()] {
            let (result, icount) = run(&w.eval_program());
            assert_ne!(result, 0, "{}: zero result is suspicious", w.name);
            assert!(
                icount > 50_000,
                "{}: {} dynamic instructions is too small to evaluate",
                w.name,
                icount
            );
            assert!(
                icount < 3_000_000,
                "{}: {} dynamic instructions is too slow to simulate",
                w.name,
                icount
            );
        }
    }

    #[test]
    fn eval_and_profile_differ_in_behaviour() {
        for w in [pointer(), update(), nbh()] {
            let (r1, i1) = run(&w.profile_program());
            let (r2, i2) = run(&w.eval_program());
            assert_ne!((r1, i1), (r2, i2), "{}", w.name);
        }
    }

    #[test]
    fn update_writes_back_to_the_pool() {
        let w = update();
        let p = w.eval_program();
        let mut i = Interp::new(&p);
        i.run(80_000_000).unwrap();
        // The pool must have been mutated relative to the initial image.
        let base = p.data_addr("pool").unwrap();
        let init = spear_exec::Memory::from_image(&p.data);
        let changed = (0..1000).any(|n| {
            let addr = base + n * 64 + 8;
            i.mem.read_u64(addr) != init.read_u64(addr)
        });
        assert!(changed, "update must mutate node payloads");
    }

    #[test]
    fn deterministic_across_runs() {
        let w = nbh();
        let (r1, _) = run(&w.eval_program());
        let (r2, _) = run(&w.eval_program());
        assert_eq!(r1, r2);
    }
}
