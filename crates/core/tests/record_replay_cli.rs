//! The record/replay loop through the real binary: `spear-sim record`
//! writes a `.spt`, `--frontend trace:FILE` replays it, and the baseline
//! stats envelope must match the program-driven run byte-for-byte once
//! the wall-clock `sim_perf` block is stripped. Hostile trace files must
//! exit with the runtime code (3) and a one-line diagnostic.

use serde::Value;
use std::path::PathBuf;
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_spear-sim");

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("spear-record-cli-{tag}-{}", std::process::id()))
}

fn run(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(BIN)
        .args(args)
        .output()
        .expect("run spear-sim");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Parse a stats envelope and drop the wall-clock-dependent `sim_perf`
/// block and the `frontend` label (asserting the label matches `want`),
/// leaving the deterministic simulation results.
fn deterministic_envelope(path: &PathBuf, want_frontend: Option<&str>) -> Value {
    let text = std::fs::read_to_string(path).expect("read envelope");
    let v = serde::json::parse(&text).expect("valid JSON envelope");
    match v {
        Value::Object(fields) => {
            let got = fields.iter().find_map(|(k, v)| match (k.as_str(), v) {
                ("frontend", Value::Str(s)) => Some(s.clone()),
                _ => None,
            });
            assert_eq!(
                got.as_deref(),
                want_frontend,
                "frontend label in {}",
                path.display()
            );
            Value::Object(
                fields
                    .into_iter()
                    .filter(|(k, _)| k != "sim_perf" && k != "frontend")
                    .collect(),
            )
        }
        other => other,
    }
}

#[test]
fn record_then_replay_is_envelope_identical() {
    let spt = temp_path("field.spt");
    let prog_json = temp_path("prog.json");
    let trace_json = temp_path("trace.json");

    let (code, stdout, stderr) = run(&[
        "record",
        "workload:field",
        "--trace-out",
        spt.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "record failed: {stderr}");
    assert!(
        stdout.contains("bits/inst"),
        "record summary line reports compression: {stdout}"
    );

    let (code, _, stderr) = run(&[
        "workload:field",
        "--quiet",
        "--stats-json",
        prog_json.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "program run failed: {stderr}");

    let frontend = format!("trace:{}", spt.display());
    let (code, _, stderr) = run(&[
        "workload:field",
        "--frontend",
        &frontend,
        "--quiet",
        "--stats-json",
        trace_json.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "trace run failed: {stderr}");

    assert_eq!(
        deterministic_envelope(&prog_json, None),
        deterministic_envelope(&trace_json, Some("trace")),
        "baseline envelope must not depend on the instruction source"
    );
    for p in [&spt, &prog_json, &trace_json] {
        let _ = std::fs::remove_file(p);
    }
}

/// One-line runtime diagnostics, exit code 3, never a panic — for every
/// flavour of hostile trace input.
#[test]
fn corrupt_traces_exit_3_with_one_line_diagnostics() {
    let spt = temp_path("hostile.spt");
    let (code, _, _) = run(&[
        "record",
        "workload:field",
        "--trace-out",
        spt.to_str().unwrap(),
    ]);
    assert_eq!(code, 0);
    let good = std::fs::read(&spt).expect("trace bytes");

    let check = |tag: &str, bytes: &[u8], needle: &str| {
        let bad = temp_path(&format!("{tag}.spt"));
        std::fs::write(&bad, bytes).unwrap();
        let frontend = format!("trace:{}", bad.display());
        let (code, _, stderr) = run(&["workload:field", "--frontend", &frontend, "--quiet"]);
        assert_eq!(code, 3, "{tag}: runtime exit code, got {code}: {stderr}");
        assert_eq!(
            stderr.trim_end().lines().count(),
            1,
            "{tag}: one-line diagnostic: {stderr:?}"
        );
        assert!(
            stderr.contains(needle),
            "{tag}: diagnostic names the problem ({needle}): {stderr}"
        );
        assert!(
            !stderr.contains("panicked"),
            "{tag}: must not panic: {stderr}"
        );
        let _ = std::fs::remove_file(&bad);
    };

    let mut flipped = good.clone();
    flipped[0] ^= 0xff;
    check("bad-magic", &flipped, "bad magic");

    let mut versioned = good.clone();
    versioned[8..12].copy_from_slice(&99u32.to_le_bytes());
    check("bad-version", &versioned, "version 99");

    check("eof-mid-image", &good[..100], "truncated");
    check("eof-mid-payload", &good[..good.len() - 1], "truncated");

    let _ = std::fs::remove_file(&spt);
}

#[test]
fn missing_trace_is_a_runtime_error() {
    let (code, _, stderr) = run(&[
        "workload:field",
        "--frontend",
        "trace:/nonexistent/path.spt",
        "--quiet",
    ]);
    assert_eq!(code, 3, "{stderr}");
    assert!(stderr.contains("cannot read trace"), "{stderr}");
}

#[test]
fn bad_frontend_spec_is_a_usage_error() {
    let (code, _, stderr) = run(&["workload:field", "--frontend", "bogus", "--quiet"]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("--frontend expects"), "{stderr}");
}

#[test]
fn record_without_trace_out_is_a_usage_error() {
    let (code, _, stderr) = run(&["record", "workload:field"]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("--trace-out"), "{stderr}");
}
