//! Golden-file test for the `--stats-json` schema: the flattened key set
//! of a [`StatsExport`] document is pinned in `golden/stats_schema_v1.txt`.
//! Adding, removing, or renaming a field changes the key set and fails
//! this test — the fix is to bump [`spear::SCHEMA_VERSION`], regenerate
//! the golden file, and note the change in EXPERIMENTS.md.

use serde::json::parse;
use serde::Value;
use spear::export::StatsExport;
use spear::SCHEMA_VERSION;
use spear_cpu::{CoreStats, DloadProfile, RunExit};

/// Flatten a JSON document into sorted `a.b.c` key paths. Arrays
/// contribute their element schema once (index `[]`), so the key set is
/// independent of run length.
fn flatten(v: &Value, prefix: &str, out: &mut Vec<String>) {
    match v {
        Value::Object(fields) => {
            for (k, val) in fields {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten(val, &path, out);
            }
        }
        Value::Array(items) => {
            if let Some(first) = items.first() {
                flatten(first, &format!("{prefix}[]"), out);
            } else {
                out.push(format!("{prefix}[]"));
            }
        }
        _ => out.push(prefix.to_string()),
    }
}

/// A fully-populated export document: every optional/array field holds at
/// least one element so its nested keys appear in the flattened schema.
fn representative_export() -> StatsExport {
    let mut stats = CoreStats::default();
    stats.dload_profiles.push(DloadProfile {
        dload_pc: 5,
        ..Default::default()
    });
    StatsExport::new("mcf", "SPEAR-128", 120, RunExit::Halted, stats)
}

#[test]
fn schema_matches_golden_file() {
    let doc = representative_export();
    let json = doc.to_json();
    let value = parse(&json).expect("export emits valid JSON");
    let mut keys = Vec::new();
    flatten(&value, "", &mut keys);
    keys.sort();
    keys.dedup();
    let rendered = keys.join("\n") + "\n";

    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/stats_schema_v1.txt"
    );
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        std::fs::write(golden_path, &rendered).expect("write golden");
    }
    let golden = std::fs::read_to_string(golden_path)
        .unwrap_or_else(|e| panic!("missing golden file {golden_path}: {e}"));
    assert_eq!(
        rendered, golden,
        "exported JSON schema drifted from tests/golden/stats_schema_v1.txt;\n\
         if the change is intentional bump SCHEMA_VERSION and regenerate"
    );
    assert_eq!(SCHEMA_VERSION, 1, "golden file is for schema v1");
}

#[test]
fn schema_version_field_matches_constant() {
    let doc = representative_export();
    let value = parse(&doc.to_json()).unwrap();
    let v = value
        .field("schema_version")
        .expect("schema_version present");
    assert_eq!(*v, Value::U64(SCHEMA_VERSION as u64));
}

#[test]
fn round_trip_preserves_document() {
    let doc = representative_export();
    let back = StatsExport::from_json(&doc.to_json()).expect("parses");
    assert_eq!(doc, back);
}
