//! Crash-safe resume, end to end through the real binary: a campaign
//! server is SIGKILLed mid-job, restarted on the same root, and the
//! final aggregates must be byte-identical to an uninterrupted
//! `spear-sim campaign` run of the same grid.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_spear-sim");

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spear-serve-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_server(root: &Path) -> Child {
    Command::new(BIN)
        .args([
            "serve",
            "--dir",
            root.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn server")
}

/// Wait for `<root>/server.addr` to appear (the server writes it after
/// binding, before accepting).
fn wait_for_addr(root: &Path) {
    let deadline = Instant::now() + Duration::from_secs(30);
    let path = root.join("server.addr");
    while !path.exists() {
        assert!(
            Instant::now() < deadline,
            "server never advertised an address"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn client(root: &Path, args: &[&str]) -> (i32, String) {
    let out = Command::new(BIN)
        .args(["client"])
        .args(args)
        .args(["--dir", root.to_str().unwrap()])
        .output()
        .expect("run client");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

fn read_lines(path: &Path) -> usize {
    std::fs::read_to_string(path)
        .map(|t| t.lines().count())
        .unwrap_or(0)
}

fn sorted_files(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    names
        .into_iter()
        .map(|n| {
            let bytes = std::fs::read(dir.join(&n)).unwrap();
            (n, bytes)
        })
        .collect()
}

#[test]
fn sigkilled_server_resumes_and_matches_uninterrupted_cli_run() {
    // Reference: one uninterrupted CLI campaign over the same grid.
    let ref_dir = temp_dir("ref");
    let status = Command::new(BIN)
        .args([
            "campaign",
            "--dir",
            ref_dir.to_str().unwrap(),
            "--workloads",
            "pointer,update",
            "--machines",
            "baseline,spear-128,spear-256",
            "--interval",
            "20000",
            "--stride",
            "1",
            "--threads",
            "2",
            "--quiet",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("run reference campaign");
    assert_eq!(status.code(), Some(0), "reference campaign failed");

    // Server run of the same grid, SIGKILLed mid-job.
    let root = temp_dir("srv");
    let mut server = start_server(&root);
    wait_for_addr(&root);
    let (code, body) = client(
        &root,
        &[
            "submit",
            "--spec",
            "{\"workloads\":[\"pointer\",\"update\"],\
             \"machines\":[\"baseline\",\"spear-128\",\"spear-256\"],\
             \"interval\":20000,\"stride\":1}",
        ],
    );
    assert_eq!(code, 0, "submit failed: {body}");
    assert!(body.contains("job-0001"), "{body}");

    // Let it execute a few cells, then kill -9: the append-only cell
    // log may at worst carry a torn trailing record.
    let cells = root.join("jobs/job-0001/campaign/cells.jsonl");
    let deadline = Instant::now() + Duration::from_secs(60);
    while read_lines(&cells) < 3 {
        assert!(
            Instant::now() < deadline,
            "server never executed cells (is the job running?)"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    server.kill().expect("SIGKILL server");
    let _ = server.wait();
    let done_before = read_lines(&cells);
    assert!(done_before >= 3);
    assert!(
        !root.join("jobs/job-0001/done.json").exists(),
        "job must not be marked done at kill time"
    );

    // Restart on the same root: the rescan re-enqueues the job and the
    // campaign resumes from cells.jsonl.
    let _ = std::fs::remove_file(root.join("server.addr"));
    let mut server = start_server(&root);
    wait_for_addr(&root);
    let (code, body) = client(&root, &["wait", "job-0001", "--timeout-s", "180"]);
    assert_eq!(code, 0, "wait failed: {body}");

    // Byte-identical aggregates, file for file.
    let served = sorted_files(&root.join("jobs/job-0001/campaign/aggregates"));
    let reference = sorted_files(&ref_dir.join("aggregates"));
    assert_eq!(served.len(), 6, "2 workloads x 3 machines");
    assert_eq!(
        served, reference,
        "server aggregates after kill -9 + resume must be byte-identical to the CLI run"
    );

    // Graceful shutdown: exit code 0.
    let (code, _) = client(&root, &["shutdown"]);
    assert_eq!(code, 0);
    let deadline = Instant::now() + Duration::from_secs(30);
    let status = loop {
        if let Some(status) = server.try_wait().expect("try_wait") {
            break status;
        }
        assert!(
            Instant::now() < deadline,
            "server did not drain after shutdown"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(status.code(), Some(0), "graceful shutdown must exit 0");

    let _ = std::fs::remove_dir_all(ref_dir);
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn exit_code_contract_usage_and_interrupted() {
    // Usage errors exit 2.
    let out = Command::new(BIN)
        .args(["campaign", "--dir"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "missing flag value is usage");
    let out = Command::new(BIN)
        .args(["campaign", "--dir", "/tmp/x", "--machines", "cray-1"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "unknown machine is usage");

    // Runtime errors exit 3.
    let out = Command::new(BIN)
        .args(["/no/such/file.spear"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "unreadable input is runtime");

    // An interrupted (max-cells-limited) campaign exits 4 and resumes
    // to exit 0.
    let dir = temp_dir("exitcode");
    let base = [
        "campaign",
        "--dir",
        dir.to_str().unwrap(),
        "--workloads",
        "pointer",
        "--machines",
        "baseline",
        "--interval",
        "20000",
        "--stride",
        "2",
        "--threads",
        "2",
        "--quiet",
    ];
    let out = Command::new(BIN)
        .args(base)
        .args(["--max-cells", "2"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4), "interrupted campaign exits 4");
    let out = Command::new(BIN).args(base).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "resumed campaign exits 0");
    let _ = std::fs::remove_dir_all(dir);
}
