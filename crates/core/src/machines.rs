//! The five machine models of the evaluation.
//!
//! The [`Machine`] enum itself lives in [`spear_cpu::machine`] so the
//! campaign engine and the campaign server (`spear-serve`) can resolve
//! machine names without depending on this top-level crate; it is
//! re-exported here under its historical path.

pub use spear_cpu::machine::Machine;
