//! Render experiment results in the paper's row/series formats
//! (plain-text tables suitable for terminals and EXPERIMENTS.md).

use crate::experiments::{Fig8Row, Fig9Series, IpcMatrix, Table1Row, Table3Row, FIG9_LATENCIES};

use spear_campaign::{ProgressSnapshot, WorkloadTiming};
use spear_cpu::{CoreConfig, CoreStats};
use std::fmt::Write;

/// Format a millisecond count as a compact human duration.
fn human_ms(ms: u64) -> String {
    if ms >= 60_000 {
        format!("{}m{:02}s", ms / 60_000, (ms % 60_000) / 1000)
    } else if ms >= 1000 {
        format!("{:.1}s", ms as f64 / 1000.0)
    } else {
        format!("{ms}ms")
    }
}

/// One-line campaign progress: cells done/total with percentage, cells
/// executed by this invocation, elapsed wall time, and the ETA derived
/// from the mean per-cell time (blank until the first cell lands).
pub fn campaign_progress(p: &ProgressSnapshot) -> String {
    let pct = if p.total > 0 {
        p.done as f64 / p.total as f64 * 100.0
    } else {
        100.0
    };
    let eta = match p.eta_ms {
        Some(ms) => format!("ETA {}", human_ms(ms)),
        None => "ETA --".to_string(),
    };
    format!(
        "cells {}/{} ({:.1}%) | executed {} | elapsed {} | {}",
        p.done,
        p.total,
        pct,
        p.executed,
        human_ms(p.elapsed_ms),
        eta
    )
}

/// Per-workload campaign timing table: cells recorded, summed simulation
/// wall time, and mean time per cell.
pub fn campaign_timings(timings: &[WorkloadTiming]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "  {:<12} {:>8} {:>12} {:>12}",
        "workload", "cells", "sim time", "per cell"
    );
    let mut total_cells = 0;
    let mut total_ms = 0;
    for t in timings {
        total_cells += t.cells;
        total_ms += t.wall_ms;
        let _ = writeln!(
            s,
            "  {:<12} {:>8} {:>12} {:>12}",
            t.workload,
            t.cells,
            human_ms(t.wall_ms),
            human_ms(t.wall_ms / t.cells.max(1))
        );
    }
    let _ = writeln!(
        s,
        "  {:<12} {:>8} {:>12} {:>12}",
        "TOTAL",
        total_cells,
        human_ms(total_ms),
        human_ms(total_ms / total_cells.max(1))
    );
    s
}

/// Render the CPI-stack cycle account: where every commit slot of every
/// cycle went. `commit_width` is the machine's commit width (the slot
/// count per cycle). Shares are of total slot-cycles; the per-cause CPI
/// column is `slot-cycles / commit_width / committed`, so the column sums
/// to the run's overall CPI.
pub fn cpi_stack(stats: &CoreStats, commit_width: usize) -> String {
    let acct = &stats.cycle_account;
    let total = acct.total_slots().max(1);
    let committed = stats.committed.max(1);
    let w = commit_width.max(1) as f64;
    let cpi = |slots: u64| slots as f64 / w / committed as f64;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "  {:<24} {:>14} {:>7} {:>8}",
        "cause", "slot-cycles", "share", "CPI"
    );
    let _ = writeln!(
        s,
        "  {:<24} {:>14} {:>6.1}% {:>8.4}",
        "useful (committed)",
        acct.useful_slots,
        acct.useful_slots as f64 / total as f64 * 100.0,
        cpi(acct.useful_slots)
    );
    for (label, slots) in acct.causes() {
        if slots == 0 {
            continue;
        }
        let _ = writeln!(
            s,
            "  {:<24} {:>14} {:>6.1}% {:>8.4}",
            label,
            slots,
            slots as f64 / total as f64 * 100.0,
            cpi(slots)
        );
    }
    let _ = writeln!(
        s,
        "  {:<24} {:>14} {:>6} {:>8.4}",
        "TOTAL",
        acct.total_slots(),
        "100.0%",
        cpi(acct.total_slots())
    );
    if acct.ruu_full_cycles > 0 {
        let _ = writeln!(
            s,
            "  (RUU full with work waiting: {} cycles)",
            acct.ruu_full_cycles
        );
    }
    s
}

/// Render the per-static-d-load prefetch effectiveness profiles: for each
/// p-thread target load, how its episodes fared and how its prefetches
/// divided into timely / late / useless.
pub fn dload_profiles(stats: &CoreStats) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "  {:<10} {:>8} {:>14} {:>8} {:>8} {:>8} {:>8} {:>9}",
        "d-load PC", "misses", "epi trg/cpl/ab", "loads", "timely", "late", "useless", "accuracy"
    );
    for p in &stats.dload_profiles {
        let _ = writeln!(
            s,
            "  {:<10} {:>8} {:>6}/{:>3}/{:>3} {:>8} {:>8} {:>8} {:>8} {:>8.1}%",
            format!("{:#06x}", p.dload_pc),
            p.demand_misses,
            p.episodes_triggered,
            p.episodes_completed,
            p.episodes_aborted,
            p.pthread_loads,
            p.timely_prefetches,
            p.late_prefetches,
            p.useless_prefetches,
            p.accuracy() * 100.0
        );
    }
    if stats.dload_profiles.is_empty() {
        let _ = writeln!(s, "  (no p-thread target loads)");
    }
    s
}

/// Render the Table 2 simulation parameters for a configuration.
pub fn table2(cfg: &CoreConfig) -> String {
    let mut s = String::new();
    let mut row = |k: &str, v: String| {
        let _ = writeln!(s, "  {k:<34} {v}");
    };
    row("Branch predict mode", "Bimodal".into());
    row("Branch table size", format!("{}", cfg.bpred.table_size));
    row("Issue width", format!("{}", cfg.issue_width));
    row("Commit width", format!("{}", cfg.commit_width));
    row("Instruction fetch queue size", format!("{}", cfg.ifq_size));
    row(
        "Reorder buffer size",
        format!("{} instructions", cfg.ruu_size),
    );
    row(
        "Integer functional units",
        format!("ALU(x{}), MUL/DIV(x{})", cfg.int_alu, cfg.int_muldiv),
    );
    row(
        "Floating point functional units",
        format!("ALU(x{}), MUL/DIV(x{})", cfg.fp_alu, cfg.fp_muldiv),
    );
    row("Number of memory ports", format!("{}", cfg.mem_ports));
    row(
        "Data L1 cache configuration",
        format!(
            "{} sets, {} block, {}-way set associative, LRU",
            cfg.hier.l1d.sets, cfg.hier.l1d.block_bytes, cfg.hier.l1d.assoc
        ),
    );
    row(
        "Data L1 cache latency",
        format!("{} CPU clock cycle", cfg.hier.latency.l1_hit),
    );
    row(
        "Unified L2 cache configuration",
        format!(
            "{} sets, {} block, {}-way set associative, LRU",
            cfg.hier.l2.sets, cfg.hier.l2.block_bytes, cfg.hier.l2.assoc
        ),
    );
    row(
        "Unified L2 cache latency",
        format!("{} CPU clock cycles", cfg.hier.latency.l2_hit),
    );
    row(
        "Memory access latency",
        format!("{} CPU clock cycles", cfg.hier.latency.memory),
    );
    s
}

/// Render Table 1 (benchmark inventory).
pub fn table1(rows: &[Table1Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "  {:<16} {:<10} {:>14} {:>14} {:>7}  description",
        "suite", "name", "eval insts", "profile insts", "mem%"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "  {:<16} {:<10} {:>14} {:>14} {:>6.1}%  {}",
            r.suite,
            r.name,
            r.eval_insts,
            r.profile_insts,
            r.mem_fraction * 100.0,
            r.description
        );
    }
    s
}

/// Render a Figure 6/7-style normalized-IPC matrix.
pub fn ipc_matrix(m: &IpcMatrix) -> String {
    let mut s = String::new();
    let _ = write!(s, "  {:<10} {:>10}", "benchmark", "base IPC");
    for mach in m.machines.iter().skip(1) {
        let _ = write!(s, " {:>14}", mach.name());
    }
    let _ = writeln!(s);
    for r in 0..m.workloads.len() {
        let _ = write!(s, "  {:<10} {:>10.4}", m.workloads[r], m.ipc(r, 0));
        for c in 1..m.machines.len() {
            let _ = write!(s, " {:>14.4}", m.normalized(r, c));
        }
        let _ = writeln!(s);
    }
    let _ = write!(s, "  {:<10} {:>10}", "AVERAGE", "1.0000");
    for c in 1..m.machines.len() {
        let _ = write!(s, " {:>14.4}", m.mean_normalized(c));
    }
    let _ = writeln!(s);
    s
}

/// Render Table 3.
pub fn table3(rows: &[Table3Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "  {:<10} {:>22} {:>18} {:>8}",
        "benchmark", "SPEAR-256 / SPEAR-128", "branch hit ratio", "IPB"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "  {:<10} {:>22.2} {:>18.4} {:>8.2}",
            r.workload, r.ratio, r.branch_hit, r.ipb
        );
    }
    s
}

/// Render Figure 8 (miss reductions).
pub fn fig8(rows: &[Fig8Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "  {:<10} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "benchmark", "base misses", "SPEAR-128", "SPEAR-256", "red. 128", "red. 256"
    );
    let mut sum128 = 0.0;
    let mut sum256 = 0.0;
    for r in rows {
        let r128 = r.reduction(r.spear128_misses);
        let r256 = r.reduction(r.spear256_misses);
        sum128 += r128;
        sum256 += r256;
        let _ = writeln!(
            s,
            "  {:<10} {:>12} {:>12} {:>12} {:>9.1}% {:>9.1}%",
            r.workload,
            r.base_misses,
            r.spear128_misses,
            r.spear256_misses,
            r128 * 100.0,
            r256 * 100.0
        );
    }
    let n = rows.len().max(1) as f64;
    let _ = writeln!(
        s,
        "  {:<10} {:>12} {:>12} {:>12} {:>9.1}% {:>9.1}%",
        "AVERAGE",
        "",
        "",
        "",
        sum128 / n * 100.0,
        sum256 / n * 100.0
    );
    s
}

/// Render Figure 9 (latency sweep series).
pub fn fig9(series: &[Fig9Series]) -> String {
    let mut s = String::new();
    for sr in series {
        let _ = writeln!(s, "  {}:", sr.workload);
        let _ = write!(s, "    {:<14}", "mem latency");
        for l in FIG9_LATENCIES {
            let _ = write!(s, " {:>8}", l);
        }
        let _ = writeln!(s, " {:>9}", "degr.");
        for (mi, m) in sr.machines.iter().enumerate() {
            let _ = write!(s, "    {:<14}", m.name());
            for l in 0..FIG9_LATENCIES.len() {
                let _ = write!(s, " {:>8.4}", sr.ipc[mi][l]);
            }
            let _ = writeln!(s, " {:>8.1}%", sr.degradation(mi) * 100.0);
        }
    }
    // Per-machine average degradation (the paper's 48.5/39.7/38.4 line).
    if !series.is_empty() {
        let machines = &series[0].machines;
        let _ = writeln!(s, "  average degradation at the longest latency:");
        for (mi, m) in machines.iter().enumerate() {
            let avg: f64 =
                series.iter().map(|sr| sr.degradation(mi)).sum::<f64>() / series.len() as f64;
            let _ = writeln!(s, "    {:<14} {:>6.1}%", m.name(), avg * 100.0);
        }
    }
    s
}

/// A single summary line comparing a measured mean speedup against the
/// paper's reported number.
pub fn summary_line(label: &str, measured: f64, paper: f64) -> String {
    format!("  {label:<34} measured {measured:>7.1}%   (paper: {paper:>5.1}%)\n")
}

/// Write rows as CSV (plain std, no extra dependencies). Fields
/// containing commas or quotes are quoted.
pub fn write_csv(
    path: &std::path::Path,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let esc = |f: &str| {
        if f.contains(',') || f.contains('"') || f.contains('\n') {
            format!("\"{}\"", f.replace('"', "\"\""))
        } else {
            f.to_string()
        }
    };
    let mut out = String::new();
    out.push_str(&header.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|f| esc(f)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    std::fs::write(path, out)
}

/// CSV rows for an IPC matrix (normalized to the first column).
pub fn ipc_matrix_csv(m: &IpcMatrix) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let mut rows = Vec::new();
    for r in 0..m.workloads.len() {
        for c in 0..m.machines.len() {
            rows.push(vec![
                m.workloads[r].clone(),
                m.machines[c].name().to_string(),
                format!("{:.6}", m.ipc(r, c)),
                format!("{:.6}", m.normalized(r, c)),
            ]);
        }
    }
    (vec!["benchmark", "machine", "ipc", "normalized"], rows)
}

/// Header printed by every bench target.
pub fn header(title: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "\n================================================================"
    );
    let _ = writeln!(s, "{title}");
    let _ = writeln!(
        s,
        "================================================================"
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines::Machine;

    #[test]
    fn table2_mentions_every_parameter() {
        let s = table2(&Machine::Spear256.config(None));
        for needle in [
            "Bimodal",
            "2048",
            "Issue width",
            "256 sets, 32 block, 4-way",
            "1024 sets, 64 block, 4-way",
            "120 CPU clock cycles",
        ] {
            assert!(s.contains(needle), "missing `{needle}` in:\n{s}");
        }
    }

    #[test]
    fn csv_escaping_and_round_shape() {
        let dir = std::env::temp_dir().join("spear_csv_test");
        let path = dir.join("t.csv");
        write_csv(
            &path,
            &["a", "b"],
            &[
                vec!["plain".into(), "with,comma".into()],
                vec!["with\"quote".into(), "x".into()],
            ],
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("a,b\n"));
        assert!(text.contains("\"with,comma\""));
        assert!(text.contains("\"with\"\"quote\""));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn summary_line_formats() {
        let s = summary_line("Figure 6 SPEAR-128 mean speedup", 14.2, 12.7);
        assert!(s.contains("14.2%"));
        assert!(s.contains("12.7%"));
    }

    #[test]
    fn campaign_progress_line() {
        let s = campaign_progress(&spear_campaign::ProgressSnapshot {
            done: 30,
            total: 120,
            executed: 12,
            elapsed_ms: 4_500,
            eta_ms: Some(95_000),
        });
        assert!(s.contains("cells 30/120 (25.0%)"), "{s}");
        assert!(s.contains("executed 12"), "{s}");
        assert!(s.contains("elapsed 4.5s"), "{s}");
        assert!(s.contains("ETA 1m35s"), "{s}");
        let cold = campaign_progress(&spear_campaign::ProgressSnapshot {
            done: 0,
            total: 10,
            executed: 0,
            elapsed_ms: 3,
            eta_ms: None,
        });
        assert!(cold.contains("ETA --"), "{cold}");
    }

    #[test]
    fn campaign_progress_survives_an_empty_campaign() {
        // A degenerate zero-cell campaign (e.g. every cell already done
        // in a directory being re-aggregated) must render 100% complete
        // with no ETA, never NaN% or a bogus 0ms estimate.
        let s = campaign_progress(&spear_campaign::ProgressSnapshot {
            done: 0,
            total: 0,
            executed: 0,
            elapsed_ms: 0,
            eta_ms: spear_campaign::eta_ms(0, 0, 0, 4),
        });
        assert!(s.contains("cells 0/0 (100.0%)"), "{s}");
        assert!(s.contains("ETA --"), "{s}");
        assert!(!s.contains("NaN"), "{s}");
    }

    #[test]
    fn campaign_timings_table() {
        let s = campaign_timings(&[
            spear_campaign::WorkloadTiming {
                workload: "mcf".into(),
                cells: 4,
                wall_ms: 8_000,
            },
            spear_campaign::WorkloadTiming {
                workload: "vpr".into(),
                cells: 2,
                wall_ms: 1_000,
            },
        ]);
        assert!(s.contains("mcf"), "{s}");
        assert!(s.contains("2.0s"), "per-cell mean of mcf: {s}");
        assert!(s.contains("TOTAL"), "{s}");
        assert!(s.contains("9.0s"), "summed time: {s}");
    }
}
