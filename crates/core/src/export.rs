//! Structured telemetry export: a versioned JSON envelope around a full
//! run's statistics, for downstream tooling (plots, regression diffs,
//! CI dashboards) that should not have to scrape the text report.
//!
//! The schema is versioned by [`SCHEMA_VERSION`]: any field rename or
//! semantic change bumps it, and a golden-file test in
//! `tests/export_schema.rs` pins the flattened key set so accidental
//! drift fails loudly.

use crate::machines::Machine;
use crate::runner::RunOutcome;
use spear_cpu::RunExit;

pub use spear_cpu::export::{SimPerf, SimpointBlock, StatsExport, SCHEMA_VERSION};

impl RunOutcome {
    /// The export envelope for this outcome (latency defaulting to the
    /// machine's Table 2 configuration when none was overridden).
    pub fn export(&self) -> StatsExport {
        let mem_latency = self.machine.config(self.latency).hier.latency.memory;
        StatsExport::new(
            self.workload.clone(),
            self.machine.name(),
            mem_latency,
            RunExit::Halted,
            self.stats.clone(),
        )
    }

    /// Render this outcome's CPI stack (see [`crate::report::cpi_stack`]).
    pub fn cpi_stack(&self) -> String {
        let width = self.machine.config(self.latency).commit_width;
        crate::report::cpi_stack(&self.stats, width)
    }
}

/// Convenience: the machine's effective memory latency for an optional
/// override (used by `spear-sim` before a core is even built).
pub fn effective_mem_latency(machine: Machine, latency: Option<spear_mem::LatencyConfig>) -> u32 {
    machine.config(latency).hier.latency.memory
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_latency_tracks_override() {
        let default = effective_mem_latency(Machine::Baseline, None);
        assert_eq!(default, 120);
        let swept = effective_mem_latency(
            Machine::Baseline,
            Some(spear_mem::LatencyConfig::sweep_point(200)),
        );
        assert_eq!(swept, 200);
    }
}
