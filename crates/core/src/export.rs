//! Structured telemetry export: a versioned JSON envelope around a full
//! run's statistics, for downstream tooling (plots, regression diffs,
//! CI dashboards) that should not have to scrape the text report.
//!
//! The schema is versioned by [`SCHEMA_VERSION`]: any field rename or
//! semantic change bumps it, and a golden-file test in
//! `tests/export_schema.rs` pins the flattened key set so accidental
//! drift fails loudly.

use crate::machines::Machine;
use crate::runner::RunOutcome;
use serde::{Deserialize, Serialize};
use spear_cpu::{CoreStats, RunExit};

/// Version of the exported JSON schema. Bump on any breaking change to
/// [`StatsExport`] or the stats types it embeds.
pub const SCHEMA_VERSION: u32 = 1;

/// The top-level JSON document written by `spear-sim --stats-json` and
/// [`RunOutcome::export`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StatsExport {
    /// Schema version of this document ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Workload name or input-file path.
    pub workload: String,
    /// Machine model name (e.g. `SPEAR-128`).
    pub machine: String,
    /// Main-memory access latency in cycles (Table 2 default or the
    /// `--mem-latency` sweep point).
    pub mem_latency: u32,
    /// How the run ended.
    pub exit: RunExit,
    /// Full simulator statistics, including the CPI-stack cycle account
    /// and the per-d-load prefetch profiles.
    pub stats: CoreStats,
}

impl StatsExport {
    /// Build the export envelope around a finished run.
    pub fn new(
        workload: impl Into<String>,
        machine: &str,
        mem_latency: u32,
        exit: RunExit,
        stats: CoreStats,
    ) -> Self {
        StatsExport {
            schema_version: SCHEMA_VERSION,
            workload: workload.into(),
            machine: machine.to_string(),
            mem_latency,
            exit,
            stats,
        }
    }

    /// Pretty-printed JSON document.
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Parse a document produced by [`Self::to_json`]. Unknown fields are
    /// ignored, so newer documents load under older readers as long as
    /// the present fields keep their meaning.
    pub fn from_json(s: &str) -> Result<Self, serde::Error> {
        serde::json::from_str(s)
    }
}

impl RunOutcome {
    /// The export envelope for this outcome (latency defaulting to the
    /// machine's Table 2 configuration when none was overridden).
    pub fn export(&self) -> StatsExport {
        let mem_latency = self.machine.config(self.latency).hier.latency.memory;
        StatsExport::new(
            self.workload.clone(),
            self.machine.name(),
            mem_latency,
            RunExit::Halted,
            self.stats.clone(),
        )
    }

    /// Render this outcome's CPI stack (see [`crate::report::cpi_stack`]).
    pub fn cpi_stack(&self) -> String {
        let width = self.machine.config(self.latency).commit_width;
        crate::report::cpi_stack(&self.stats, width)
    }
}

/// Convenience: the machine's effective memory latency for an optional
/// override (used by `spear-sim` before a core is even built).
pub fn effective_mem_latency(machine: Machine, latency: Option<spear_mem::LatencyConfig>) -> u32 {
    machine.config(latency).hier.latency.memory
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_json() {
        let mut stats = CoreStats {
            cycles: 123,
            committed: 456,
            ..Default::default()
        };
        stats.cycle_account.useful_slots = 456;
        stats.cycle_account.dload_miss = 528;
        let doc = StatsExport::new("mcf", "SPEAR-128", 120, RunExit::Halted, stats);
        let json = doc.to_json();
        let back = StatsExport::from_json(&json).expect("valid JSON");
        assert_eq!(doc, back);
        assert_eq!(back.schema_version, SCHEMA_VERSION);
    }

    #[test]
    fn effective_latency_tracks_override() {
        let default = effective_mem_latency(Machine::Baseline, None);
        assert_eq!(default, 120);
        let swept = effective_mem_latency(
            Machine::Baseline,
            Some(spear_mem::LatencyConfig::sweep_point(200)),
        );
        assert_eq!(swept, 200);
    }
}
