//! Experiment runner: compile workloads with the SPEAR post-compiler and
//! simulate them on the evaluation machines, in parallel.

use crate::machines::Machine;
use parking_lot::Mutex;
use spear_compiler::{CompileReport, CompilerConfig, SpearCompiler};
use spear_cpu::{Core, CoreStats, RunExit};
use spear_isa::pthread::PThreadTable;
use spear_isa::SpearBinary;
use spear_mem::LatencyConfig;
use spear_workloads::Workload;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Hard ceilings so a misconfigured run cannot hang the harness.
const MAX_CYCLES: u64 = 200_000_000;
const MAX_INSTS: u64 = u64::MAX;

/// One (workload, machine) simulation result.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Workload abbreviation.
    pub workload: String,
    /// Machine simulated.
    pub machine: Machine,
    /// Latency configuration used (None = Table 2 default).
    pub latency: Option<LatencyConfig>,
    /// Full simulator statistics.
    pub stats: CoreStats,
}

impl RunOutcome {
    /// Main-thread IPC (the paper's metric).
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }
}

/// Compile a workload with the SPEAR post-compiler: profile on the
/// profiling input, return the p-thread table (to be attached to the
/// evaluation-input image) and the compile report.
pub fn compile_workload(w: &Workload) -> (PThreadTable, CompileReport) {
    compile_workload_with(w, &CompilerConfig::default())
}

/// [`compile_workload`] with explicit compiler configuration (ablations).
pub fn compile_workload_with(w: &Workload, cfg: &CompilerConfig) -> (PThreadTable, CompileReport) {
    let profile_program = w.profile_program();
    let (binary, report) = SpearCompiler::new(cfg.clone())
        .compile(&profile_program)
        .unwrap_or_else(|e| panic!("{}: compile failed: {e}", w.name));
    (binary.table, report)
}

/// Simulate one workload on one machine. `table` is the compiled p-thread
/// table (ignored for the baseline); `latency` optionally overrides the
/// Table 2 latencies (Figure 9).
pub fn run_one(
    w: &Workload,
    table: &PThreadTable,
    machine: Machine,
    latency: Option<LatencyConfig>,
) -> RunOutcome {
    let program = w.eval_program();
    let binary = if machine.is_spear() {
        SpearCompiler::attach(program, table.clone())
    } else {
        SpearBinary::plain(program)
    };
    let cfg = machine.config(latency);
    let mut core = Core::new(&binary, cfg);
    let res = core
        .run(MAX_CYCLES, MAX_INSTS)
        .unwrap_or_else(|e| panic!("{} on {}: {e}", w.name, machine));
    assert_eq!(
        res.exit,
        RunExit::Halted,
        "{} on {} did not halt within the cycle budget",
        w.name,
        machine
    );
    RunOutcome {
        workload: w.name.to_string(),
        machine,
        latency,
        stats: res.stats,
    }
}

/// Simulate one workload under an arbitrary configuration (ablations).
/// The `machine` field of the outcome records the nearest standard model.
pub fn run_custom(
    w: &Workload,
    table: &PThreadTable,
    cfg: spear_cpu::CoreConfig,
    machine: Machine,
) -> RunOutcome {
    let program = w.eval_program();
    let binary = if cfg.spear.is_some() {
        SpearCompiler::attach(program, table.clone())
    } else {
        SpearBinary::plain(program)
    };
    let mut core = Core::new(&binary, cfg);
    let res = core
        .run(MAX_CYCLES, MAX_INSTS)
        .unwrap_or_else(|e| panic!("{} (custom cfg): {e}", w.name));
    assert_eq!(res.exit, RunExit::Halted, "{} did not halt", w.name);
    RunOutcome {
        workload: w.name.to_string(),
        machine,
        latency: None,
        stats: res.stats,
    }
}

/// Run `f` over `items` on all available cores, preserving order.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n.max(1));
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                results.lock()[i] = Some(r);
            });
        }
    })
    .expect("worker panicked");
    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("all slots filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spear_workloads::by_name;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn compile_and_run_field_fast() {
        // `field` is the cheapest workload; smoke-test the whole path.
        let w = by_name("field").unwrap();
        let (table, report) = compile_workload(&w);
        // Field has almost no misses — typically no p-threads at all.
        assert!(report.profiled_insts > 0);
        let base = run_one(&w, &table, Machine::Baseline, None);
        assert!(base.ipc() > 0.5, "field is cache-resident: {}", base.ipc());
        let spear = run_one(&w, &table, Machine::Spear128, None);
        let ratio = spear.ipc() / base.ipc();
        assert!(
            (0.9..=1.1).contains(&ratio),
            "field should be roughly flat under SPEAR: {ratio:.3}"
        );
    }
}
