//! One entry point per table and figure of the paper's evaluation (§5).
//!
//! Every function takes the workload set to run (normally
//! `spear_workloads::all()`, but tests and quick looks can pass subsets)
//! and returns a structured result that `crate::report` renders in the
//! paper's row/series format.

use crate::machines::Machine;
use crate::runner::{compile_workload, parallel_map, run_one, RunOutcome};
use spear_campaign::{Campaign, CampaignSpec, MachinePoint, SampleSpec, SimpointSpec};
use spear_compiler::CompileReport;
use spear_cpu::CoreStats;
use spear_exec::Interp;
use spear_isa::pthread::PThreadTable;
use spear_mem::LatencyConfig;
use spear_workloads::Workload;

/// Compiled tables for a workload set (compile once, reuse across all
/// machines and latency points).
pub struct Compiled {
    /// The workloads, in input order.
    pub workloads: Vec<Workload>,
    /// One p-thread table per workload.
    pub tables: Vec<PThreadTable>,
    /// One compile report per workload.
    pub reports: Vec<CompileReport>,
}

/// Run the SPEAR compiler over every workload in parallel.
pub fn compile_all(workloads: &[Workload]) -> Compiled {
    let compiled = parallel_map(workloads, compile_workload);
    let (tables, reports) = compiled.into_iter().unzip();
    Compiled {
        workloads: workloads.to_vec(),
        tables,
        reports,
    }
}

/// A workload × machine IPC matrix (the shape of Figures 6 and 7).
pub struct IpcMatrix {
    /// Machines, in column order.
    pub machines: Vec<Machine>,
    /// Workload names, in row order.
    pub workloads: Vec<String>,
    /// `outcomes[row][col]` for workload `row` on machine `col`.
    pub outcomes: Vec<Vec<RunOutcome>>,
}

impl IpcMatrix {
    /// IPC of workload `row` on machine `col`.
    pub fn ipc(&self, row: usize, col: usize) -> f64 {
        self.outcomes[row][col].ipc()
    }

    /// IPC normalized to the first column (the baseline), as the paper
    /// plots Figures 6 and 7. `None` when the baseline IPC is zero or
    /// not finite (a truncated or failed baseline run), where the ratio
    /// would be meaningless.
    pub fn try_normalized(&self, row: usize, col: usize) -> Option<f64> {
        let base = self.ipc(row, 0);
        if base > 0.0 && base.is_finite() {
            Some(self.ipc(row, col) / base)
        } else {
            None
        }
    }

    /// Like [`Self::try_normalized`], with degenerate baselines reported
    /// as 0.0 instead of propagating a NaN/infinity into means and plots.
    pub fn normalized(&self, row: usize, col: usize) -> f64 {
        self.try_normalized(row, col).unwrap_or(0.0)
    }

    /// Arithmetic mean of the normalized IPCs in a column (the paper's
    /// "on the average, a 12.7% speedup" numbers).
    pub fn mean_normalized(&self, col: usize) -> f64 {
        let n = self.workloads.len() as f64;
        (0..self.workloads.len())
            .map(|r| self.normalized(r, col))
            .sum::<f64>()
            / n
    }

    /// The column index of a machine.
    pub fn col(&self, m: Machine) -> usize {
        self.machines
            .iter()
            .position(|&x| x == m)
            .expect("machine in matrix")
    }
}

/// Run a workload × machine matrix at the default (Table 2) latencies.
pub fn run_matrix(compiled: &Compiled, machines: &[Machine]) -> IpcMatrix {
    // Flatten into (row, col) jobs for the worker pool.
    let jobs: Vec<(usize, usize)> = (0..compiled.workloads.len())
        .flat_map(|r| (0..machines.len()).map(move |c| (r, c)))
        .collect();
    let flat = parallel_map(&jobs, |&(r, c)| {
        run_one(
            &compiled.workloads[r],
            &compiled.tables[r],
            machines[c],
            None,
        )
    });
    let mut outcomes: Vec<Vec<RunOutcome>> = Vec::with_capacity(compiled.workloads.len());
    let mut it = flat.into_iter();
    for _ in 0..compiled.workloads.len() {
        outcomes.push((0..machines.len()).map(|_| it.next().unwrap()).collect());
    }
    IpcMatrix {
        machines: machines.to_vec(),
        workloads: compiled
            .workloads
            .iter()
            .map(|w| w.name.to_string())
            .collect(),
        outcomes,
    }
}

/// **Figure 6** — normalized main-thread IPC of baseline vs SPEAR-128 vs
/// SPEAR-256.
pub fn fig6(compiled: &Compiled) -> IpcMatrix {
    run_matrix(compiled, &Machine::FIG6)
}

/// Sampled counterpart of [`run_matrix`]: route the workload × machine
/// grid through the checkpointed campaign engine (see `spear-campaign`)
/// instead of full-program cycle simulation. The campaign directory
/// `dir` holds per-cell results; rerunning over the same directory
/// resumes instead of recomputing.
///
/// The returned matrix has the same shape as [`run_matrix`]'s, but each
/// outcome's statistics are the weighted aggregate over the sampled
/// intervals (`sum(committed) / sum(cycles)` for IPC).
pub fn run_matrix_sampled(
    workloads: &[Workload],
    machines: &[Machine],
    latency: Option<LatencyConfig>,
    sample: SampleSpec,
    dir: &std::path::Path,
) -> Result<IpcMatrix, String> {
    let names: Vec<String> = workloads.iter().map(|w| w.name.to_string()).collect();
    run_matrix_campaign(&names, machines, latency, sample, None, dir)
}

/// SimPoint counterpart of [`run_matrix_sampled`]: phase-cluster each
/// workload's BBV intervals and cycle-simulate one weighted
/// representative per phase instead of every `stride`-th interval.
/// `scale` multiplies the evaluation input (`name@xN` workload specs),
/// the paper-scale knob for running Figure 6 at 100–1000× the seed
/// instruction counts.
pub fn run_matrix_simpoint(
    workloads: &[Workload],
    machines: &[Machine],
    latency: Option<LatencyConfig>,
    sample: SampleSpec,
    simpoint: SimpointSpec,
    scale: u32,
    dir: &std::path::Path,
) -> Result<IpcMatrix, String> {
    let names: Vec<String> = workloads
        .iter()
        .map(|w| {
            if scale > 1 {
                format!("{}@x{scale}", w.name)
            } else {
                w.name.to_string()
            }
        })
        .collect();
    run_matrix_campaign(&names, machines, latency, sample, Some(simpoint), dir)
}

/// The campaign-backed matrix runner behind [`run_matrix_sampled`] and
/// [`run_matrix_simpoint`]: `names` are full workload specs (possibly
/// `@xN`-scaled) and become the matrix's workload labels.
fn run_matrix_campaign(
    names: &[String],
    machines: &[Machine],
    latency: Option<LatencyConfig>,
    sample: SampleSpec,
    simpoint: Option<SimpointSpec>,
    dir: &std::path::Path,
) -> Result<IpcMatrix, String> {
    let mem_latency = latency.unwrap_or_else(LatencyConfig::paper).memory;
    let spec = CampaignSpec {
        workloads: names.to_vec(),
        points: machines
            .iter()
            .map(|&m| MachinePoint {
                machine: m.name().to_string(),
                mem_latency,
                config: m.config(latency),
            })
            .collect(),
        frontends: Vec::new(),
        sample,
        threads: 0,
        max_cells: None,
        window: None,
        simpoint,
    };
    let summary = Campaign::new(dir, spec).run(None)?;
    let aggs = summary.aggregates();
    let mut outcomes = Vec::with_capacity(names.len());
    for name in names {
        let mut row = Vec::with_capacity(machines.len());
        for &m in machines {
            let agg = aggs
                .iter()
                .find(|a| a.workload == *name && a.machine == m.name())
                .ok_or_else(|| format!("campaign produced no cells for {name} on {m}"))?;
            row.push(RunOutcome {
                workload: name.clone(),
                machine: m,
                latency,
                stats: agg.stats.clone(),
            });
        }
        outcomes.push(row);
    }
    Ok(IpcMatrix {
        machines: machines.to_vec(),
        workloads: names.to_vec(),
        outcomes,
    })
}

/// **Figure 6**, sampled: the same three-machine matrix estimated from
/// checkpointed interval simulation.
pub fn fig6_sampled(
    workloads: &[Workload],
    sample: SampleSpec,
    dir: &std::path::Path,
) -> Result<IpcMatrix, String> {
    run_matrix_sampled(workloads, &Machine::FIG6, None, sample, dir)
}

/// **Figure 6**, SimPoint-sampled at `scale`× the evaluation inputs: the
/// paper-scale phase-clustered estimate.
pub fn fig6_simpoint(
    workloads: &[Workload],
    sample: SampleSpec,
    simpoint: SimpointSpec,
    scale: u32,
    dir: &std::path::Path,
) -> Result<IpcMatrix, String> {
    run_matrix_simpoint(
        workloads,
        &Machine::FIG6,
        None,
        sample,
        simpoint,
        scale,
        dir,
    )
}

/// Parse the `SPEAR_SAMPLED` environment flag that routes figure sweeps
/// through the sampled path: `INTERVAL` or `INTERVAL:STRIDE` (e.g.
/// `100000:10` = simulate every 10th 100k-instruction interval). Unset,
/// empty, or malformed values mean "run the full simulation".
pub fn sample_spec_from_env() -> Option<SampleSpec> {
    let raw = std::env::var("SPEAR_SAMPLED").ok()?;
    parse_sample_spec(&raw)
}

/// The parsing behind [`sample_spec_from_env`], separated for testing.
pub fn parse_sample_spec(raw: &str) -> Option<SampleSpec> {
    let raw = raw.trim();
    if raw.is_empty() {
        return None;
    }
    let (ival, stride) = match raw.split_once(':') {
        Some((i, s)) => (i.parse().ok()?, s.parse().ok()?),
        None => (raw.parse().ok()?, 1),
    };
    if ival == 0 || stride == 0 {
        return None;
    }
    Some(SampleSpec {
        interval_len: ival,
        stride,
    })
}

/// **Figure 7** — adds the dedicated-functional-unit models.
pub fn fig7(compiled: &Compiled) -> IpcMatrix {
    run_matrix(compiled, &Machine::ALL)
}

/// One row of **Table 3**.
pub struct Table3Row {
    /// Workload name.
    pub workload: String,
    /// SPEAR-256 IPC over SPEAR-128 IPC.
    pub ratio: f64,
    /// Branch direction hit ratio (measured on SPEAR-128, as the paper's
    /// table accompanies the SPEAR results).
    pub branch_hit: f64,
    /// Instructions per branch.
    pub ipb: f64,
}

/// **Table 3** — the longer-IFQ enhancement against branch predictability.
pub fn table3(matrix: &IpcMatrix) -> Vec<Table3Row> {
    let c128 = matrix.col(Machine::Spear128);
    let c256 = matrix.col(Machine::Spear256);
    (0..matrix.workloads.len())
        .map(|r| {
            let s128 = &matrix.outcomes[r][c128].stats;
            Table3Row {
                workload: matrix.workloads[r].clone(),
                ratio: matrix.ipc(r, c256) / matrix.ipc(r, c128),
                branch_hit: s128.branch_hit_ratio(),
                ipb: s128.ipb(),
            }
        })
        .collect()
}

/// One row of **Figure 8**.
pub struct Fig8Row {
    /// Workload name.
    pub workload: String,
    /// Baseline main-thread L1D misses.
    pub base_misses: u64,
    /// Main-thread L1D misses under SPEAR-128 / SPEAR-256.
    pub spear128_misses: u64,
    /// Main-thread L1D misses under SPEAR-256.
    pub spear256_misses: u64,
}

impl Fig8Row {
    /// Fractional reduction for a SPEAR model (positive = fewer misses).
    pub fn reduction(&self, misses: u64) -> f64 {
        if self.base_misses == 0 {
            0.0
        } else {
            1.0 - misses as f64 / self.base_misses as f64
        }
    }
}

/// **Figure 8** — main-thread L1D miss reduction under SPEAR.
pub fn fig8(matrix: &IpcMatrix) -> Vec<Fig8Row> {
    let cb = matrix.col(Machine::Baseline);
    let c128 = matrix.col(Machine::Spear128);
    let c256 = matrix.col(Machine::Spear256);
    (0..matrix.workloads.len())
        .map(|r| Fig8Row {
            workload: matrix.workloads[r].clone(),
            base_misses: matrix.outcomes[r][cb].stats.l1d_main_misses,
            spear128_misses: matrix.outcomes[r][c128].stats.l1d_main_misses,
            spear256_misses: matrix.outcomes[r][c256].stats.l1d_main_misses,
        })
        .collect()
}

/// The Figure 9 memory-latency sweep points: (memory, L2) cycles.
pub const FIG9_LATENCIES: [u32; 5] = [40, 80, 120, 160, 200];

/// One workload's **Figure 9** series.
pub struct Fig9Series {
    /// Workload name.
    pub workload: String,
    /// Machines, in series order.
    pub machines: Vec<Machine>,
    /// `ipc[m][l]` — IPC of machine `m` at `FIG9_LATENCIES[l]`.
    pub ipc: Vec<Vec<f64>>,
}

impl Fig9Series {
    /// Fractional IPC loss of machine `m` between the shortest and
    /// longest latency (the paper's 39.7%/38.4%/48.5% summary numbers).
    pub fn degradation(&self, m: usize) -> f64 {
        1.0 - self.ipc[m].last().unwrap() / self.ipc[m][0]
    }
}

/// **Figure 9** — IPC under memory latencies 40..200 for a workload set
/// (the paper uses pointer, update, nbh, dm, mcf, vpr).
pub fn fig9(compiled: &Compiled) -> Vec<Fig9Series> {
    let machines = Machine::FIG6;
    let jobs: Vec<(usize, usize, usize)> = (0..compiled.workloads.len())
        .flat_map(|w| {
            (0..machines.len()).flat_map(move |m| (0..FIG9_LATENCIES.len()).map(move |l| (w, m, l)))
        })
        .collect();
    let flat = parallel_map(&jobs, |&(w, m, l)| {
        run_one(
            &compiled.workloads[w],
            &compiled.tables[w],
            machines[m],
            Some(LatencyConfig::sweep_point(FIG9_LATENCIES[l])),
        )
        .ipc()
    });
    let mut out = Vec::new();
    let mut it = flat.into_iter();
    for w in 0..compiled.workloads.len() {
        let mut ipc = Vec::new();
        for _ in 0..machines.len() {
            ipc.push(
                (0..FIG9_LATENCIES.len())
                    .map(|_| it.next().unwrap())
                    .collect(),
            );
        }
        out.push(Fig9Series {
            workload: compiled.workloads[w].name.to_string(),
            machines: machines.to_vec(),
            ipc,
        });
    }
    out
}

/// One row of **Table 1** — the benchmark inventory.
pub struct Table1Row {
    /// Suite label.
    pub suite: &'static str,
    /// Workload name.
    pub name: String,
    /// Dynamic instructions of the evaluation input.
    pub eval_insts: u64,
    /// Dynamic instructions of the profiling input.
    pub profile_insts: u64,
    /// Static memory-operation fraction of the kernel text.
    pub mem_fraction: f64,
    /// Kernel description.
    pub description: String,
}

/// **Table 1** — benchmark inventory with simulated instruction counts.
pub fn table1(workloads: &[Workload]) -> Vec<Table1Row> {
    parallel_map(workloads, |w| {
        let count = |p: &spear_isa::Program| {
            let mut i = Interp::new(p);
            i.run(u64::MAX).expect("workload runs");
            i.icount
        };
        let eval = w.eval_program();
        let mem_fraction = eval.static_mix().mem_fraction();
        Table1Row {
            suite: w.suite.label(),
            name: w.name.to_string(),
            eval_insts: count(&eval),
            profile_insts: count(&w.profile_program()),
            mem_fraction,
            description: w.description.to_string(),
        }
    })
}

/// Summary statistics convenience: extract a stats field for a workload ×
/// machine pair from a matrix.
pub fn stats_of<'m>(matrix: &'m IpcMatrix, workload: &str, machine: Machine) -> &'m CoreStats {
    let r = matrix
        .workloads
        .iter()
        .position(|w| w == workload)
        .expect("workload in matrix");
    &matrix.outcomes[r][matrix.col(machine)].stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use spear_workloads::by_name;

    /// Hand-build a matrix with known IPCs (cycles/committed chosen to
    /// produce them) to pin the normalization and summary math.
    fn synthetic_matrix(ipcs: &[(&str, [f64; 3])]) -> IpcMatrix {
        let machines = Machine::FIG6.to_vec();
        let outcomes = ipcs
            .iter()
            .map(|(name, vals)| {
                vals.iter()
                    .enumerate()
                    .map(|(c, &ipc)| {
                        let stats = CoreStats {
                            cycles: 1_000_000,
                            committed: (ipc * 1_000_000.0) as u64,
                            ..Default::default()
                        };
                        crate::runner::RunOutcome {
                            workload: name.to_string(),
                            machine: machines[c],
                            latency: None,
                            stats,
                        }
                    })
                    .collect()
            })
            .collect();
        IpcMatrix {
            machines,
            workloads: ipcs.iter().map(|(n, _)| n.to_string()).collect(),
            outcomes,
        }
    }

    #[test]
    fn normalization_math() {
        let m = synthetic_matrix(&[("a", [1.0, 1.5, 2.0]), ("b", [0.5, 0.5, 0.25])]);
        assert!((m.normalized(0, 1) - 1.5).abs() < 1e-9);
        assert!((m.normalized(1, 2) - 0.5).abs() < 1e-9);
        // Mean of {1.5, 1.0} and {2.0, 0.5}.
        assert!((m.mean_normalized(1) - 1.25).abs() < 1e-9);
        assert!((m.mean_normalized(2) - 1.25).abs() < 1e-9);
    }

    #[test]
    fn normalized_guards_degenerate_baseline() {
        // Row "dead" has a zero-IPC baseline (0 committed instructions):
        // the ratio is undefined, and must neither be NaN nor infinity.
        let m = synthetic_matrix(&[("live", [1.0, 2.0, 3.0]), ("dead", [0.0, 1.0, 1.0])]);
        assert_eq!(m.try_normalized(1, 1), None);
        assert_eq!(m.normalized(1, 1), 0.0);
        assert!(m.normalized(1, 2).is_finite());
        // The live row is unaffected...
        assert_eq!(m.try_normalized(0, 2), Some(3.0));
        // ...and the column mean stays finite despite the dead row.
        assert!(m.mean_normalized(1).is_finite());
        assert!((m.mean_normalized(1) - 1.0).abs() < 1e-9, "(2.0 + 0.0) / 2");
    }

    #[test]
    fn sample_spec_parsing() {
        use spear_campaign::SampleSpec;
        assert_eq!(
            parse_sample_spec("100000"),
            Some(SampleSpec {
                interval_len: 100_000,
                stride: 1
            })
        );
        assert_eq!(
            parse_sample_spec(" 50000:10 "),
            Some(SampleSpec {
                interval_len: 50_000,
                stride: 10
            })
        );
        for bad in ["", "0", "10:0", "abc", "10:xyz", "1:2:3"] {
            assert_eq!(parse_sample_spec(bad), None, "`{bad}` must be rejected");
        }
    }

    #[test]
    fn sampled_matrix_matches_full_shape() {
        let ws = small_set();
        let dir = std::env::temp_dir().join(format!("spear-sampled-shape-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let m = fig6_sampled(&ws, spear_campaign::SampleSpec::full(50_000), &dir)
            .expect("sampled fig6");
        assert_eq!(m.machines.len(), 3);
        assert_eq!(m.workloads, vec!["field", "mcf"]);
        for r in 0..2 {
            assert!((m.normalized(r, 0) - 1.0).abs() < 1e-12);
            for c in 0..3 {
                assert!(m.ipc(r, c) > 0.0);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn table3_ratio_math() {
        let m = synthetic_matrix(&[("a", [1.0, 2.0, 3.0])]);
        let t3 = table3(&m);
        assert!((t3[0].ratio - 1.5).abs() < 1e-9, "3.0 / 2.0");
    }

    #[test]
    fn fig8_reduction_math() {
        let row = Fig8Row {
            workload: "x".into(),
            base_misses: 1000,
            spear128_misses: 600,
            spear256_misses: 1100,
        };
        assert!((row.reduction(600) - 0.4).abs() < 1e-9);
        assert!(
            (row.reduction(1100) + 0.1).abs() < 1e-9,
            "negative = more misses"
        );
        let zero = Fig8Row {
            base_misses: 0,
            ..row
        };
        assert_eq!(zero.reduction(5), 0.0);
    }

    #[test]
    fn fig9_degradation_math() {
        let s = Fig9Series {
            workload: "x".into(),
            machines: Machine::FIG6.to_vec(),
            ipc: vec![vec![2.0, 1.5, 1.0, 0.8, 0.5]; 3],
        };
        assert!((s.degradation(0) - 0.75).abs() < 1e-9);
    }

    fn small_set() -> Vec<Workload> {
        vec![by_name("field").unwrap(), by_name("mcf").unwrap()]
    }

    #[test]
    fn fig6_shape_and_normalization() {
        let compiled = compile_all(&small_set());
        let m = fig6(&compiled);
        assert_eq!(m.machines.len(), 3);
        assert_eq!(m.workloads, vec!["field", "mcf"]);
        for r in 0..2 {
            assert!(
                (m.normalized(r, 0) - 1.0).abs() < 1e-12,
                "baseline col is 1.0"
            );
        }
        // mcf must speed up under SPEAR (the paper's headline case).
        let row = m.workloads.iter().position(|w| w == "mcf").unwrap();
        assert!(
            m.normalized(row, m.col(Machine::Spear128)) > 1.05,
            "mcf SPEAR-128 speedup: {:.3}",
            m.normalized(row, m.col(Machine::Spear128))
        );
    }

    #[test]
    fn table3_rows_align() {
        let compiled = compile_all(&small_set());
        let m = fig6(&compiled);
        let t3 = table3(&m);
        assert_eq!(t3.len(), 2);
        for row in &t3 {
            assert!(
                row.ratio > 0.5 && row.ratio < 2.0,
                "{}: {}",
                row.workload,
                row.ratio
            );
            assert!(row.branch_hit > 0.5 && row.branch_hit <= 1.0);
            assert!(row.ipb > 1.0);
        }
    }

    #[test]
    fn fig8_mcf_misses_drop() {
        let compiled = compile_all(&[by_name("mcf").unwrap()]);
        let m = fig6(&compiled);
        let f8 = fig8(&m);
        assert!(
            f8[0].reduction(f8[0].spear256_misses) > 0.05,
            "mcf misses must drop ≥5% under SPEAR-256: {:?}",
            (f8[0].base_misses, f8[0].spear256_misses)
        );
    }

    #[test]
    fn table1_counts_nonzero() {
        let rows = table1(&small_set());
        for r in rows {
            assert!(r.eval_insts > 50_000, "{}: {}", r.name, r.eval_insts);
            assert!(r.profile_insts > 10_000);
            assert_ne!(r.eval_insts, r.profile_insts);
        }
    }
}
