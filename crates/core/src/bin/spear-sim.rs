//! `spear-sim` — the cycle-level simulator driver.
//!
//! Runs a `.spear` executable (produced by `spearc`) on any of the five
//! evaluated machine models, printing the full statistics block, and
//! optionally an episode trace.
//!
//! ```text
//! spear-sim mcf.spear                          # baseline superscalar
//! spear-sim mcf.spear -m spear-128             # the SPEAR machine
//! spear-sim workload:mcf -m spear-128          # compile+run a built-in workload
//! spear-sim mcf.spear -m spear-256 --mem-latency 200
//! spear-sim mcf.spear -m spear-128 --trace 40  # print the last 40 episode events
//! ```

use spear::Machine;
use spear_cpu::Core;
use spear_isa::binfile;
use spear_mem::LatencyConfig;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: spear-sim FILE.spear [-m MACHINE] [--mem-latency N]\n\
         \x20      [--max-cycles N] [--max-insts N] [--trace N] [--quiet]\n\n\
         machines: baseline, spear-128, spear-256, spear-sf-128, spear-sf-256"
    );
    exit(2)
}

fn parse_machine(s: &str) -> Machine {
    match s {
        "baseline" | "superscalar" => Machine::Baseline,
        "spear-128" => Machine::Spear128,
        "spear-256" => Machine::Spear256,
        "spear-sf-128" | "spear.sf-128" => Machine::SpearSf128,
        "spear-sf-256" | "spear.sf-256" => Machine::SpearSf256,
        _ => usage(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut file: Option<String> = None;
    let mut machine = Machine::Baseline;
    let mut latency: Option<LatencyConfig> = None;
    let mut max_cycles = u64::MAX;
    let mut max_insts = u64::MAX;
    let mut trace: Option<usize> = None;
    let mut quiet = false;

    let mut it = args.into_iter();
    let next_val = |it: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        it.next().unwrap_or_else(|| {
            eprintln!("spear-sim: {flag} needs a value");
            exit(2)
        })
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-m" | "--machine" => machine = parse_machine(&next_val(&mut it, "-m")),
            "--mem-latency" => {
                let mem: u32 = next_val(&mut it, "--mem-latency").parse().unwrap_or_else(|_| usage());
                latency = Some(LatencyConfig::sweep_point(mem));
            }
            "--max-cycles" => {
                max_cycles = next_val(&mut it, "--max-cycles").parse().unwrap_or_else(|_| usage())
            }
            "--max-insts" => {
                max_insts = next_val(&mut it, "--max-insts").parse().unwrap_or_else(|_| usage())
            }
            "--trace" => {
                trace = Some(next_val(&mut it, "--trace").parse().unwrap_or_else(|_| usage()))
            }
            "--quiet" => quiet = true,
            _ if file.is_none() && !arg.starts_with('-') => file = Some(arg),
            _ => usage(),
        }
    }
    let Some(file) = file else { usage() };
    let binary = if let Some(name) = file.strip_prefix("workload:") {
        // Convenience path: compile the built-in workload in-process
        // (profiling input drives the compiler; evaluation input runs).
        let Some(w) = spear_workloads::by_name(name) else {
            eprintln!("spear-sim: unknown workload `{name}`");
            exit(1)
        };
        let (table, _) = spear::runner::compile_workload(&w);
        spear_compiler::SpearCompiler::attach(w.eval_program(), table)
    } else {
        let bytes = std::fs::read(&file).unwrap_or_else(|e| {
            eprintln!("spear-sim: cannot read `{file}`: {e}");
            exit(1)
        });
        binfile::load(&bytes).unwrap_or_else(|e| {
            eprintln!("spear-sim: `{file}`: {e}");
            exit(1)
        })
    };

    let cfg = machine.config(latency);
    let mut core = Core::new(&binary, cfg);
    if let Some(cap) = trace {
        core.enable_trace(cap);
    }
    let res = core.run(max_cycles, max_insts).unwrap_or_else(|e| {
        eprintln!("spear-sim: {e}");
        exit(1)
    });
    let s = &res.stats;

    println!("machine       {}", machine.name());
    println!("exit          {:?}", res.exit);
    println!("cycles        {}", s.cycles);
    println!("committed     {}", s.committed);
    println!("IPC           {:.4}", s.ipc());
    if !quiet {
        println!("loads/stores  {} / {}", s.committed_loads, s.committed_stores);
        println!("branches      {} (IPB {:.2})", s.committed_branches, s.ipb());
        println!("bpred hit     {:.4}", s.branch_hit_ratio());
        println!("recoveries    {} ({} squashed)", s.recoveries, s.squashed);
        println!("L1D misses    {} main / {} p-thread", s.l1d_main_misses, s.l1d_pthread_misses);
        if machine.is_spear() {
            println!(
                "triggers      {} accepted / {} busy / {} below-occupancy",
                s.triggers_accepted, s.triggers_ignored_busy, s.triggers_rejected_occupancy
            );
            println!(
                "episodes      {} completed / {} flush-aborted / {} missed / {} re-armed",
                s.preexec_completed,
                s.preexec_aborted_flush,
                s.preexec_aborted_missed,
                s.preexec_retargets
            );
            println!(
                "p-thread      {} insts, {} loads, {} faults, {} live-in copy cycles",
                s.pthread_insts, s.pthread_loads, s.pthread_faults, s.livein_copy_cycles
            );
            println!(
                "prefetches    {} timely / {} late of {} issued",
                s.useful_prefetches, s.late_prefetches, s.pthread_loads
            );
            println!("episode len   {}", s.episode_cycles);
            println!("extractions   {}", s.episode_extractions);
        }
    }
    if let Some(t) = core.trace() {
        println!("\nepisode trace (last {} of {} events):", t.len(), t.total);
        for e in t.events() {
            println!("  {e}");
        }
    }
}
