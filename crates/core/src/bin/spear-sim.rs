//! `spear-sim` — the cycle-level simulator driver.
//!
//! Runs a `.spear` executable (produced by `spearc`) on any of the five
//! evaluated machine models, printing the full statistics block, and
//! optionally an episode trace.
//!
//! ```text
//! spear-sim mcf.spear                          # baseline superscalar
//! spear-sim mcf.spear -m spear-128             # the SPEAR machine
//! spear-sim workload:mcf -m spear-128          # compile+run a built-in workload
//! spear-sim mcf.spear -m spear-256 --mem-latency 200
//! spear-sim mcf.spear -m spear-128 --trace 40  # print the last 40 episode events
//! spear-sim workload:mcf -m spear-128 --stats-json out.json --trace-file t.jsonl
//! ```

use spear::export::{SimPerf, StatsExport};
use spear::{report, Machine};
use spear_campaign::{Campaign, CampaignSpec, MachinePoint, SampleSpec, SimpointSpec};
use spear_cpu::{Core, TraceSource};
use spear_isa::binfile;
use spear_mem::LatencyConfig;
use spear_trace::TraceFile;
use std::io::BufWriter;
use std::process::exit;

/// The exit-code contract, applied uniformly across subcommands:
///
/// * `0` — success.
/// * `1` — the run itself succeeded but found what it was looking for
///   (fuzz divergences / replay regressions), so scripts can separate
///   "harness broke" from "harness found a bug".
/// * `2` — usage error: bad flags, unknown names, malformed values.
/// * `3` — runtime error: IO failures, simulation errors, server faults.
/// * `4` — campaign interrupted (`--max-cells` budget); rerun to resume.
mod exitcode {
    pub const OK: i32 = 0;
    pub const FINDINGS: i32 = 1;
    pub const USAGE: i32 = 2;
    pub const RUNTIME: i32 = 3;
    pub const INTERRUPTED: i32 = 4;
}

fn usage() -> ! {
    eprintln!(
        "usage: spear-sim FILE.spear [-m MACHINE] [--bpred SPEC] [--mem-latency N]\n\
         \x20      [--max-cycles N] [--max-insts N] [--trace N] [--quiet]\n\
         \x20      [--stats-json PATH] [--trace-file PATH] [--perf]\n\
         \x20      [--pipeview PATH] [--perfetto PATH] [--window N]\n\
         \x20      [--frontend program|trace:FILE.spt]\n\
         \x20  or: spear-sim record FILE.spear|workload:NAME --trace-out FILE.spt\n\
         \x20      [--max-insts N]\n\
         \x20  or: spear-sim campaign --dir DIR [--workloads a,b@x100,c|all]\n\
         \x20      [--machines M1,M2,...] [--bpreds S1,S2,...] [--mem-latency N]\n\
         \x20      [--frontends program,trace] [--interval N] [--stride N]\n\
         \x20      [--threads N] [--max-cells N]\n\
         \x20      [--window N] [--simpoint] [--simpoint-k N] [--simpoint-seed N]\n\
         \x20      [--quiet]\n\
         \x20  or: spear-sim serve --dir DIR [--addr HOST:PORT] [--workers N]\n\
         \x20      [--queue-cap N] [--cache-mb N]\n\
         \x20  or: spear-sim client ACTION [--addr HOST:PORT | --dir DIR] ...\n\
         \x20      actions: submit (--spec JSON | --spec-file PATH), list,\n\
         \x20      status ID, aggregates ID, cancel ID, wait ID [--timeout-s N],\n\
         \x20      shutdown\n\
         \x20  or: spear-sim obs-summary TRACE.jsonl\n\
         \x20  or: spear-sim fuzz [--seconds N] [--seed S] [--corpus DIR]\n\
         \x20  or: spear-sim fuzz --replay DIR\n\
         \x20  or: spear-sim dump-config [-m MACHINE] [--bpred SPEC] [--mem-latency N]\n\n\
         machines: baseline, spear-128, spear-256, spear-sf-128, spear-sf-256\n\
         predictors: bimodal (paper default), gshare,\n\
         \x20        tage[:tables=N,bits=N,tag=N,hmin=N,hmax=N,decay=N]\n\
         exit codes: 0 ok, 1 fuzz findings, 2 usage, 3 runtime error,\n\
         \x20        4 campaign interrupted"
    );
    exit(exitcode::USAGE)
}

fn parse_machine(s: &str) -> Machine {
    Machine::from_cli_name(s).unwrap_or_else(|| {
        eprintln!("spear-sim: unknown machine `{s}`");
        usage()
    })
}

/// Parse a `--bpred` spec onto the paper's default predictor sizing.
fn parse_bpred(s: &str) -> spear_bpred::PredictorConfig {
    spear_bpred::PredictorConfig::paper()
        .with_spec(s)
        .unwrap_or_else(|e| {
            eprintln!("spear-sim: bad predictor spec `{s}`: {e}");
            usage()
        })
}

/// Split a `--bpreds` list on the commas *between* specs. A comma only
/// starts a new spec when what follows names a predictor kind, so the
/// commas inside `tage:tables=6,bits=10,...` stay part of that spec.
fn split_bpred_list(s: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for piece in s.split(',') {
        let starts_new =
            matches!(piece, "bimodal" | "gshare" | "tage") || piece.starts_with("tage:");
        match out.last_mut() {
            Some(last) if !starts_new => {
                last.push(',');
                last.push_str(piece);
            }
            _ => out.push(piece.to_string()),
        }
    }
    out
}

/// Parse a numeric flag value, reporting the offending text on failure.
fn parse_num<T: std::str::FromStr>(flag: &str, val: &str) -> T {
    val.parse().unwrap_or_else(|_| {
        eprintln!("spear-sim: {flag} expects a number, got `{val}`");
        exit(exitcode::USAGE)
    })
}

/// Resolve a positional program argument: `workload:NAME` compiles the
/// built-in workload in-process (profiling input drives the compiler;
/// evaluation input runs); anything else loads a `.spear` binfile.
fn load_input(file: &str) -> spear_isa::SpearBinary {
    if let Some(name) = file.strip_prefix("workload:") {
        let Some(w) = spear_workloads::by_name(name) else {
            eprintln!("spear-sim: unknown workload `{name}`");
            exit(exitcode::USAGE)
        };
        let (table, _) = spear::runner::compile_workload(&w);
        spear_compiler::SpearCompiler::attach(w.eval_program(), table)
    } else {
        let bytes = std::fs::read(file).unwrap_or_else(|e| {
            eprintln!("spear-sim: cannot read `{file}`: {e}");
            exit(exitcode::RUNTIME)
        });
        binfile::load(&bytes).unwrap_or_else(|e| {
            eprintln!("spear-sim: `{file}`: {e}");
            exit(exitcode::RUNTIME)
        })
    }
}

/// The `record` subcommand: run the golden interpreter over a program
/// and capture the committed path as a compressed self-describing `.spt`
/// trace (program image + delta/varint/RLE-packed per-instruction
/// records) that `--frontend trace:FILE` and campaign `frontends: trace`
/// cells replay.
fn record_main(args: Vec<String>) -> ! {
    let mut file: Option<String> = None;
    let mut out: Option<String> = None;
    let mut max_insts = u64::MAX;

    let mut it = args.into_iter();
    let next_val = |it: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        it.next().unwrap_or_else(|| {
            eprintln!("spear-sim: {flag} needs a value");
            exit(exitcode::USAGE)
        })
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trace-out" => out = Some(next_val(&mut it, "--trace-out")),
            "--max-insts" => {
                max_insts = parse_num("--max-insts", &next_val(&mut it, "--max-insts"))
            }
            _ if file.is_none() && !arg.starts_with('-') => file = Some(arg),
            _ => {
                eprintln!("spear-sim: unrecognized record argument `{arg}`");
                usage()
            }
        }
    }
    let Some(file) = file else {
        eprintln!("spear-sim: record needs a program (FILE.spear or workload:NAME)");
        usage()
    };
    let Some(out) = out else {
        eprintln!("spear-sim: record needs --trace-out");
        usage()
    };
    let binary = load_input(&file);
    let (bytes, stats) = spear_trace::record(&binary, max_insts).unwrap_or_else(|e| {
        eprintln!("spear-sim: record `{file}`: {e}");
        exit(exitcode::RUNTIME)
    });
    std::fs::write(&out, &bytes).unwrap_or_else(|e| {
        eprintln!("spear-sim: cannot write `{out}`: {e}");
        exit(exitcode::RUNTIME)
    });
    if !stats.halted {
        eprintln!("spear-sim: record hit the --max-insts budget before the program halted");
    }
    println!(
        "recorded {file}: {} insts -> {out} ({} bytes: {} image + {} payload, raw {}); \
         {:.2} payload bits/inst, {:.2} file bits/inst",
        stats.insts,
        stats.file_bytes,
        stats.image_bytes,
        stats.payload_bytes,
        stats.raw_payload_bytes,
        stats.payload_bits_per_inst(),
        stats.file_bits_per_inst()
    );
    exit(exitcode::OK)
}

/// The `campaign` subcommand: run (or resume) a checkpointed sampled
/// campaign and write one `--stats-json`-shaped envelope per aggregate.
fn campaign_main(args: Vec<String>) -> ! {
    let mut dir: Option<String> = None;
    let mut workloads = vec!["all".to_string()];
    let mut machines = vec![Machine::Baseline, Machine::Spear128, Machine::Spear256];
    let mut bpreds = vec![spear_bpred::PredictorConfig::paper()];
    let mut frontends: Vec<String> = Vec::new();
    let mut latency: Option<LatencyConfig> = None;
    let mut interval: u64 = 100_000;
    let mut stride: u64 = 1;
    let mut threads: usize = 0;
    let mut max_cells: Option<u64> = None;
    let mut window: Option<u64> = None;
    let mut simpoint = false;
    let mut simpoint_k: u64 = 0;
    let mut simpoint_seed: u64 = 42;
    let mut quiet = false;

    let mut it = args.into_iter();
    let next_val = |it: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        it.next().unwrap_or_else(|| {
            eprintln!("spear-sim: {flag} needs a value");
            exit(exitcode::USAGE)
        })
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--dir" => dir = Some(next_val(&mut it, "--dir")),
            "--workloads" => {
                workloads = next_val(&mut it, "--workloads")
                    .split(',')
                    .map(str::to_string)
                    .collect()
            }
            "--machines" => {
                machines = next_val(&mut it, "--machines")
                    .split(',')
                    .map(parse_machine)
                    .collect()
            }
            "--bpreds" => {
                bpreds = split_bpred_list(&next_val(&mut it, "--bpreds"))
                    .iter()
                    .map(|s| parse_bpred(s))
                    .collect()
            }
            "--frontends" => {
                frontends = next_val(&mut it, "--frontends")
                    .split(',')
                    .map(str::to_string)
                    .collect()
            }
            "--mem-latency" => {
                let mem: u32 = parse_num("--mem-latency", &next_val(&mut it, "--mem-latency"));
                latency = Some(LatencyConfig::sweep_point(mem));
            }
            "--interval" => interval = parse_num("--interval", &next_val(&mut it, "--interval")),
            "--stride" => stride = parse_num("--stride", &next_val(&mut it, "--stride")),
            "--threads" => threads = parse_num("--threads", &next_val(&mut it, "--threads")),
            "--max-cells" => {
                max_cells = Some(parse_num("--max-cells", &next_val(&mut it, "--max-cells")))
            }
            "--window" => {
                let n: u64 = parse_num("--window", &next_val(&mut it, "--window"));
                window = Some(if n == 0 {
                    spear_cpu::DEFAULT_WINDOW_CYCLES
                } else {
                    n
                });
            }
            "--simpoint" => simpoint = true,
            "--simpoint-k" => {
                simpoint = true;
                simpoint_k = parse_num("--simpoint-k", &next_val(&mut it, "--simpoint-k"));
            }
            "--simpoint-seed" => {
                simpoint = true;
                simpoint_seed = parse_num("--simpoint-seed", &next_val(&mut it, "--simpoint-seed"));
            }
            "--quiet" => quiet = true,
            _ => {
                eprintln!("spear-sim: unrecognized campaign argument `{arg}`");
                usage()
            }
        }
    }
    let Some(dir) = dir else {
        eprintln!("spear-sim: campaign needs --dir");
        usage()
    };
    if workloads.iter().any(|w| w == "all") {
        workloads = spear_workloads::all()
            .iter()
            .map(|w| w.name.to_string())
            .collect();
    }
    for name in &workloads {
        if spear_workloads::by_spec(name).is_none() {
            eprintln!("spear-sim: unknown workload `{name}`");
            exit(exitcode::USAGE)
        }
    }
    if interval == 0 || stride == 0 {
        eprintln!("spear-sim: --interval and --stride must be nonzero");
        exit(exitcode::USAGE)
    }
    if simpoint && window.is_some() {
        eprintln!(
            "spear-sim: --simpoint is incompatible with --window (windowed \
             telemetry cannot be weight-blended across phase representatives)"
        );
        exit(exitcode::USAGE)
    }
    if simpoint && stride != 1 {
        eprintln!("spear-sim: --simpoint requires --stride 1 (clustering replaces sampling)");
        exit(exitcode::USAGE)
    }

    let mem_latency = latency.unwrap_or_else(LatencyConfig::paper).memory;
    let mut points = Vec::with_capacity(machines.len() * bpreds.len());
    for &m in &machines {
        for &bp in &bpreds {
            let mut config = m.config(latency);
            config.bpred = bp;
            points.push(MachinePoint {
                machine: m.name().to_string(),
                mem_latency,
                config,
            });
        }
    }
    let spec = CampaignSpec {
        workloads,
        points,
        frontends,
        sample: SampleSpec {
            interval_len: interval,
            stride,
        },
        threads,
        max_cells,
        window,
        simpoint: simpoint.then_some(SimpointSpec {
            k: simpoint_k,
            seed: simpoint_seed,
        }),
    };
    let campaign = Campaign::new(&dir, spec.clone());
    let progress = |p: &spear_campaign::ProgressSnapshot| {
        eprintln!("{}", report::campaign_progress(p));
    };
    let summary = campaign
        .run(if quiet { None } else { Some(&progress) })
        .unwrap_or_else(|e| {
            eprintln!("spear-sim: campaign failed: {e}");
            exit(exitcode::RUNTIME)
        });

    // One versioned stats envelope per aggregate, same schema as
    // `--stats-json`, under <dir>/aggregates/ — via the same writer the
    // campaign server uses, so CLI and served output stay byte-identical.
    let aggs = summary.aggregates();
    let agg_dir = std::path::Path::new(&dir).join("aggregates");
    spear_campaign::write_aggregate_envelopes(
        std::path::Path::new(&dir),
        &summary.results,
        spec.simpoint.map(|sp| (sp, interval)),
    )
    .unwrap_or_else(|e| {
        eprintln!("spear-sim: {e}");
        exit(exitcode::RUNTIME)
    });

    if summary.interrupted {
        println!(
            "campaign interrupted after {} cells ({}/{} done); rerun to resume",
            summary.executed,
            summary.executed + summary.skipped,
            summary.total_cells
        );
    } else {
        println!(
            "campaign complete: {} cells ({} executed now, {} resumed) in {}",
            summary.total_cells,
            summary.executed,
            summary.skipped,
            report_ms(summary.elapsed_ms)
        );
    }
    if !quiet {
        println!("\nper-workload simulation time:");
        print!("{}", report::campaign_timings(&summary.timings));
        println!(
            "\naggregates ({} written to {}):",
            aggs.len(),
            agg_dir.display()
        );
        for a in &aggs {
            println!(
                "  {:<12} {:<14} {:<10} lat {:>3}  cells {:>4}  IPC {:.4}  {:.0} KIPS",
                a.workload,
                a.machine,
                a.bpred,
                a.mem_latency,
                a.cells,
                a.ipc(),
                a.kips()
            );
        }
    }
    exit(if summary.interrupted {
        exitcode::INTERRUPTED
    } else {
        exitcode::OK
    })
}

/// The `serve` subcommand: run the resident campaign server (see
/// `spear-serve`) until SIGTERM or `POST /shutdown`, then drain.
fn serve_main(args: Vec<String>) -> ! {
    let mut dir: Option<String> = None;
    let mut addr = "127.0.0.1:7171".to_string();
    let mut workers: usize = 0;
    let mut queue_cap: usize = 16;
    let mut cache_mb: u64 = 256;

    let mut it = args.into_iter();
    let next_val = |it: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        it.next().unwrap_or_else(|| {
            eprintln!("spear-sim: {flag} needs a value");
            exit(exitcode::USAGE)
        })
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--dir" => dir = Some(next_val(&mut it, "--dir")),
            "--addr" => addr = next_val(&mut it, "--addr"),
            "--workers" => workers = parse_num("--workers", &next_val(&mut it, "--workers")),
            "--queue-cap" => {
                queue_cap = parse_num("--queue-cap", &next_val(&mut it, "--queue-cap"))
            }
            "--cache-mb" => cache_mb = parse_num("--cache-mb", &next_val(&mut it, "--cache-mb")),
            _ => {
                eprintln!("spear-sim: unrecognized serve argument `{arg}`");
                usage()
            }
        }
    }
    let Some(dir) = dir else {
        eprintln!("spear-sim: serve needs --dir");
        usage()
    };
    let cfg = spear_serve::ServeConfig {
        root: dir.into(),
        addr,
        workers,
        queue_cap,
        cache_bytes: cache_mb * 1024 * 1024,
    };
    spear_serve::install_signal_handlers();
    let server = spear_serve::Server::bind(&cfg).unwrap_or_else(|e| {
        eprintln!("spear-sim: serve: {e}");
        exit(exitcode::RUNTIME)
    });
    eprintln!(
        "spear-serve listening on {} (root {}, queue cap {})",
        server.local_addr(),
        cfg.root.display(),
        cfg.queue_cap,
    );
    server.run().unwrap_or_else(|e| {
        eprintln!("spear-sim: serve: {e}");
        exit(exitcode::RUNTIME)
    });
    eprintln!("spear-serve drained cleanly");
    exit(exitcode::OK)
}

/// The `client` subcommand: a thin curl-substitute for the control
/// plane, so scripts and CI need no external HTTP tooling.
fn client_main(args: Vec<String>) -> ! {
    let mut action: Option<String> = None;
    let mut job_id: Option<String> = None;
    let mut addr: Option<String> = None;
    let mut dir: Option<String> = None;
    let mut spec: Option<String> = None;
    let mut timeout_s: u64 = 600;

    let mut it = args.into_iter();
    let next_val = |it: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        it.next().unwrap_or_else(|| {
            eprintln!("spear-sim: {flag} needs a value");
            exit(exitcode::USAGE)
        })
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = Some(next_val(&mut it, "--addr")),
            "--dir" => dir = Some(next_val(&mut it, "--dir")),
            "--spec" => spec = Some(next_val(&mut it, "--spec")),
            "--spec-file" => {
                let path = next_val(&mut it, "--spec-file");
                spec = Some(std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    eprintln!("spear-sim: cannot read `{path}`: {e}");
                    exit(exitcode::RUNTIME)
                }));
            }
            "--timeout-s" => {
                timeout_s = parse_num("--timeout-s", &next_val(&mut it, "--timeout-s"))
            }
            _ if action.is_none() && !arg.starts_with('-') => action = Some(arg),
            _ if job_id.is_none() && !arg.starts_with('-') => job_id = Some(arg),
            _ => {
                eprintln!("spear-sim: unrecognized client argument `{arg}`");
                usage()
            }
        }
    }
    let Some(action) = action else {
        eprintln!("spear-sim: client needs an action");
        usage()
    };
    let addr = addr.unwrap_or_else(|| match &dir {
        Some(d) => {
            spear_serve::client::read_server_addr(std::path::Path::new(d)).unwrap_or_else(|e| {
                eprintln!("spear-sim: {e}");
                exit(exitcode::RUNTIME)
            })
        }
        None => {
            eprintln!("spear-sim: client needs --addr or --dir");
            usage()
        }
    });
    let need_id = || {
        job_id.clone().unwrap_or_else(|| {
            eprintln!("spear-sim: client {action} needs a job id");
            usage()
        })
    };

    let (method, path, body) = match action.as_str() {
        "submit" => {
            let Some(spec) = spec.as_deref() else {
                eprintln!("spear-sim: client submit needs --spec or --spec-file");
                usage()
            };
            ("POST", "/jobs".to_string(), Some(spec))
        }
        "list" => ("GET", "/jobs".to_string(), None),
        "status" => ("GET", format!("/jobs/{}", need_id()), None),
        "aggregates" => ("GET", format!("/jobs/{}/aggregates", need_id()), None),
        "cancel" => ("POST", format!("/jobs/{}/cancel", need_id()), None),
        "shutdown" => ("POST", "/shutdown".to_string(), None),
        "wait" => {
            let id = need_id();
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(timeout_s);
            loop {
                let (status, text) =
                    spear_serve::client::request(&addr, "GET", &format!("/jobs/{id}"), None)
                        .unwrap_or_else(|e| {
                            eprintln!("spear-sim: {e}");
                            exit(exitcode::RUNTIME)
                        });
                if status != 200 {
                    eprintln!("spear-sim: wait: {text}");
                    exit(exitcode::RUNTIME)
                }
                let state = serde::json::from_str::<serde::Value>(&text)
                    .ok()
                    .and_then(|v| match v.field("state") {
                        Ok(serde::Value::Str(s)) => Some(s.clone()),
                        _ => None,
                    })
                    .unwrap_or_else(|| {
                        eprintln!("spear-sim: wait: malformed status `{text}`");
                        exit(exitcode::RUNTIME)
                    });
                match state.as_str() {
                    "done" => {
                        println!("{text}");
                        exit(exitcode::OK)
                    }
                    "failed" | "cancelled" => {
                        eprintln!("spear-sim: job {id} ended {state}: {text}");
                        exit(exitcode::RUNTIME)
                    }
                    _ => {}
                }
                if std::time::Instant::now() >= deadline {
                    eprintln!("spear-sim: timed out after {timeout_s}s waiting for {id}");
                    exit(exitcode::RUNTIME)
                }
                std::thread::sleep(std::time::Duration::from_millis(300));
            }
        }
        other => {
            eprintln!("spear-sim: unknown client action `{other}`");
            usage()
        }
    };

    let (status, text) =
        spear_serve::client::request(&addr, method, &path, body).unwrap_or_else(|e| {
            eprintln!("spear-sim: {e}");
            exit(exitcode::RUNTIME)
        });
    if (200..300).contains(&status) {
        println!("{text}");
        exit(exitcode::OK)
    }
    eprintln!("spear-sim: server returned {status}: {text}");
    exit(if status == 400 {
        exitcode::USAGE
    } else {
        exitcode::RUNTIME
    })
}

/// The `obs-summary` subcommand: fold the `window` rows of a JSONL
/// trace (written with `--trace-file` plus `--window`) into a
/// per-window table.
fn obs_summary_main(args: Vec<String>) -> ! {
    let [file] = args.as_slice() else {
        eprintln!("spear-sim: obs-summary takes exactly one trace file");
        usage()
    };
    let text = std::fs::read_to_string(file).unwrap_or_else(|e| {
        eprintln!("spear-sim: cannot read `{file}`: {e}");
        exit(exitcode::RUNTIME)
    });
    let windows = spear::obs::parse_window_rows(&text).unwrap_or_else(|e| {
        eprintln!("spear-sim: `{file}`: {e}");
        exit(exitcode::RUNTIME)
    });
    print!("{}", spear::obs::summarize_windows(&windows));
    exit(exitcode::OK)
}

/// The `fuzz` subcommand: run the differential fuzzing harness (random
/// programs judged by the architectural-equivalence oracle) for a wall-
/// clock budget, or replay the minimized-reproducer corpus. Exits 0 on a
/// clean run, 1 on any divergence or regression.
fn fuzz_main(args: Vec<String>) -> ! {
    let mut seconds: u64 = 30;
    let mut seed: u64 = 42;
    let mut corpus: Option<String> = None;
    let mut replay: Option<String> = None;

    let mut it = args.into_iter();
    let next_val = |it: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        it.next().unwrap_or_else(|| {
            eprintln!("spear-sim: {flag} needs a value");
            exit(exitcode::USAGE)
        })
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seconds" => seconds = parse_num("--seconds", &next_val(&mut it, "--seconds")),
            "--seed" => seed = parse_num("--seed", &next_val(&mut it, "--seed")),
            "--corpus" => corpus = Some(next_val(&mut it, "--corpus")),
            "--replay" => replay = Some(next_val(&mut it, "--replay")),
            _ => {
                eprintln!("spear-sim: unrecognized fuzz argument `{arg}`");
                usage()
            }
        }
    }

    if let Some(dir) = replay {
        let report = spear_fuzz::replay(std::path::Path::new(&dir), |line| println!("{line}"))
            .unwrap_or_else(|e| {
                eprintln!("spear-sim: corpus replay failed: {e}");
                exit(exitcode::RUNTIME)
            });
        println!(
            "corpus replay: {} reproducer(s), {} regression(s)",
            report.replayed,
            report.regressions.len()
        );
        exit(if report.regressions.is_empty() {
            exitcode::OK
        } else {
            exitcode::FINDINGS
        })
    }

    let corpus_dir = corpus.as_ref().map(std::path::Path::new);
    let summary = spear_fuzz::fuzz(seconds, seed, corpus_dir, |line| println!("{line}"));
    println!(
        "fuzz: {} programs ({} golden insts) in {:.1}s, {} divergence(s); \
         {} episodes completed, {} inclusion diagnostics",
        summary.programs,
        summary.golden_insts,
        summary.elapsed_secs,
        summary.divergences,
        summary.episodes_completed,
        summary.inclusion_violations
    );
    for f in &summary.findings {
        println!(
            "  reproducer: [{}] {} ({} static / {} dynamic insts){}",
            f.repro.found_config,
            f.repro.found_kind,
            f.repro.static_insts,
            f.repro.golden_icount,
            match &f.saved_to {
                Some(p) if p.as_os_str().is_empty() => " [write failed]".to_string(),
                Some(p) => format!(" -> {}", p.display()),
                None => String::new(),
            }
        );
    }
    exit(if summary.divergences == 0 {
        exitcode::OK
    } else {
        exitcode::FINDINGS
    })
}

/// The `dump-config` subcommand: print the fully resolved [`CoreConfig`]
/// a machine model would run with, as pretty-printed JSON. Useful for
/// diffing machine models and for documenting exactly what a paper figure
/// was produced with.
fn dump_config_main(args: Vec<String>) -> ! {
    let mut machine = Machine::Baseline;
    let mut bpred: Option<spear_bpred::PredictorConfig> = None;
    let mut latency: Option<LatencyConfig> = None;

    let mut it = args.into_iter();
    let next_val = |it: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        it.next().unwrap_or_else(|| {
            eprintln!("spear-sim: {flag} needs a value");
            exit(exitcode::USAGE)
        })
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-m" | "--machine" => machine = parse_machine(&next_val(&mut it, "-m")),
            "--bpred" => bpred = Some(parse_bpred(&next_val(&mut it, "--bpred"))),
            "--mem-latency" => {
                let mem: u32 = parse_num("--mem-latency", &next_val(&mut it, "--mem-latency"));
                latency = Some(LatencyConfig::sweep_point(mem));
            }
            _ => {
                eprintln!("spear-sim: unrecognized dump-config argument `{arg}`");
                usage()
            }
        }
    }
    let mut cfg = machine.config(latency);
    if let Some(bp) = bpred {
        cfg.bpred = bp;
    }
    // The resolved config JSON carries the predictor kind and sizing; the
    // derived direction-table geometry is summarized on stderr so the
    // stdout document stays pure config.
    let pred = spear_bpred::Predictor::new(cfg.bpred);
    let geom: Vec<String> = pred
        .geometry()
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect();
    eprintln!(
        "# bpred {} ({}): {}",
        cfg.bpred.spec_label(),
        pred.kind().name(),
        geom.join(" ")
    );
    println!("{}", serde::json::to_string_pretty(&cfg));
    exit(exitcode::OK)
}

/// Compact duration for the completion line.
fn report_ms(ms: u64) -> String {
    if ms >= 1000 {
        format!("{:.1}s", ms as f64 / 1000.0)
    } else {
        format!("{ms}ms")
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    if args[0] == "record" {
        record_main(args.split_off(1));
    }
    if args[0] == "campaign" {
        campaign_main(args.split_off(1));
    }
    if args[0] == "serve" {
        serve_main(args.split_off(1));
    }
    if args[0] == "client" {
        client_main(args.split_off(1));
    }
    if args[0] == "fuzz" {
        fuzz_main(args.split_off(1));
    }
    if args[0] == "dump-config" {
        dump_config_main(args.split_off(1));
    }
    if args[0] == "obs-summary" {
        obs_summary_main(args.split_off(1));
    }
    let mut file: Option<String> = None;
    let mut machine = Machine::Baseline;
    let mut bpred: Option<spear_bpred::PredictorConfig> = None;
    let mut latency: Option<LatencyConfig> = None;
    let mut max_cycles = u64::MAX;
    let mut max_insts = u64::MAX;
    let mut trace: Option<usize> = None;
    let mut quiet = false;
    let mut perf = false;
    let mut stats_json: Option<String> = None;
    let mut trace_file: Option<String> = None;
    let mut pipeview: Option<String> = None;
    let mut perfetto: Option<String> = None;
    let mut window: Option<u64> = None;
    let mut frontend: Option<String> = None;

    let mut it = args.into_iter();
    let next_val = |it: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        it.next().unwrap_or_else(|| {
            eprintln!("spear-sim: {flag} needs a value");
            exit(exitcode::USAGE)
        })
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-m" | "--machine" => machine = parse_machine(&next_val(&mut it, "-m")),
            "--bpred" => bpred = Some(parse_bpred(&next_val(&mut it, "--bpred"))),
            "--mem-latency" => {
                let mem: u32 = parse_num("--mem-latency", &next_val(&mut it, "--mem-latency"));
                latency = Some(LatencyConfig::sweep_point(mem));
            }
            "--max-cycles" => {
                max_cycles = parse_num("--max-cycles", &next_val(&mut it, "--max-cycles"))
            }
            "--max-insts" => {
                max_insts = parse_num("--max-insts", &next_val(&mut it, "--max-insts"))
            }
            "--trace" => trace = Some(parse_num("--trace", &next_val(&mut it, "--trace"))),
            "--frontend" => frontend = Some(next_val(&mut it, "--frontend")),
            "--stats-json" => stats_json = Some(next_val(&mut it, "--stats-json")),
            "--trace-file" => trace_file = Some(next_val(&mut it, "--trace-file")),
            "--pipeview" => pipeview = Some(next_val(&mut it, "--pipeview")),
            "--perfetto" => perfetto = Some(next_val(&mut it, "--perfetto")),
            "--window" => {
                let n: u64 = parse_num("--window", &next_val(&mut it, "--window"));
                // 0 selects the default window length.
                window = Some(if n == 0 {
                    spear_cpu::DEFAULT_WINDOW_CYCLES
                } else {
                    n
                });
            }
            "--quiet" => quiet = true,
            "--perf" => perf = true,
            _ if file.is_none() && !arg.starts_with('-') => file = Some(arg),
            _ => {
                eprintln!("spear-sim: unrecognized argument `{arg}`");
                usage()
            }
        }
    }
    let Some(file) = file else { usage() };
    // Resolve the instruction supply. The default `program` front end
    // compiles/loads the positional argument and executes semantics at
    // dispatch; `--frontend trace:FILE` replays a recorded committed
    // path instead, fetching from the image embedded in the trace (the
    // positional argument then only names the stats envelope).
    let replay: Option<TraceFile> = match frontend.as_deref() {
        None | Some("program") => None,
        Some(spec) => {
            let Some(path) = spec.strip_prefix("trace:") else {
                eprintln!("spear-sim: --frontend expects `program` or `trace:FILE`, got `{spec}`");
                usage()
            };
            let bytes = std::fs::read(path).unwrap_or_else(|e| {
                eprintln!("spear-sim: cannot read trace `{path}`: {e}");
                exit(exitcode::RUNTIME)
            });
            Some(TraceFile::decode(&bytes).unwrap_or_else(|e| {
                eprintln!("spear-sim: trace `{path}`: {e}");
                exit(exitcode::RUNTIME)
            }))
        }
    };
    let binary = match &replay {
        Some(_) => None,
        None => Some(load_input(&file)),
    };

    let mut cfg = machine.config(latency);
    if let Some(bp) = bpred {
        cfg.bpred = bp;
    }
    let bpred_label = cfg.bpred.spec_label();
    let commit_width = cfg.commit_width;
    let mem_latency = cfg.hier.latency.memory;
    let mut core = match &replay {
        Some(tf) => Core::with_source(&tf.binary, cfg, Box::new(TraceSource::new(tf))),
        None => Core::new(binary.as_ref().expect("program front end"), cfg),
    };
    if let Some(cap) = trace {
        core.enable_trace(cap);
    }
    if let Some(path) = &trace_file {
        let f = std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("spear-sim: cannot create trace file `{path}`: {e}");
            exit(exitcode::RUNTIME)
        });
        core.set_trace_sink(Box::new(BufWriter::new(f)));
    }
    if pipeview.is_some() || perfetto.is_some() {
        core.enable_lifecycle(spear_cpu::DEFAULT_LIFECYCLE_CAP);
    }
    if let Some(len) = window {
        core.enable_windows(len);
    }
    let wall_start = std::time::Instant::now();
    let res = core.run(max_cycles, max_insts).unwrap_or_else(|e| {
        eprintln!("spear-sim: {e}");
        exit(exitcode::RUNTIME)
    });
    let wall = wall_start.elapsed();
    let s = &res.stats;
    let sim_perf = SimPerf::from_run(s.committed, s.cycles, wall);

    // Pipeline-timeline exports from the retained lifecycle records.
    if pipeview.is_some() || perfetto.is_some() {
        let obs = core.obs().expect("lifecycle was enabled");
        let log = obs.lifecycle.as_ref().expect("lifecycle was enabled");
        if log.dropped > 0 {
            eprintln!(
                "spear-sim: lifecycle cap reached; {} record(s) dropped \
                 (shorten the run with --max-cycles/--max-insts)",
                log.dropped
            );
        }
        let export =
            |path: &str, f: &dyn Fn(&mut BufWriter<std::fs::File>) -> std::io::Result<()>| {
                let file = std::fs::File::create(path).unwrap_or_else(|e| {
                    eprintln!("spear-sim: cannot create `{path}`: {e}");
                    exit(exitcode::RUNTIME)
                });
                let mut w = BufWriter::new(file);
                f(&mut w)
                    .and_then(|()| w.into_inner().map_err(|e| e.into_error()).map(drop))
                    .unwrap_or_else(|e| {
                        eprintln!("spear-sim: cannot write `{path}`: {e}");
                        exit(exitcode::RUNTIME)
                    });
            };
        if let Some(path) = &pipeview {
            export(path, &|w| spear::obs::write_konata(w, &log.records));
        }
        if let Some(path) = &perfetto {
            export(path, &|w| {
                spear::obs::write_perfetto(w, &log.records, &log.samples)
            });
        }
    }

    if let Some(path) = &stats_json {
        let doc = StatsExport::new(
            file.clone(),
            machine.name(),
            mem_latency,
            res.exit,
            s.clone(),
        )
        .with_sim_perf(sim_perf)
        .with_bpred(&bpred_label)
        .with_frontend(if replay.is_some() { "trace" } else { "program" });
        std::fs::write(path, doc.to_json()).unwrap_or_else(|e| {
            eprintln!("spear-sim: cannot write `{path}`: {e}");
            exit(exitcode::RUNTIME)
        });
    }

    println!("machine       {}", machine.name());
    println!("bpred         {bpred_label}");
    println!("exit          {:?}", res.exit);
    println!("cycles        {}", s.cycles);
    println!("committed     {}", s.committed);
    println!("IPC           {:.4}", s.ipc());
    if perf {
        println!("{}", sim_perf.summary());
    }
    if !quiet {
        println!(
            "loads/stores  {} / {}",
            s.committed_loads, s.committed_stores
        );
        println!(
            "branches      {} (IPB {:.2})",
            s.committed_branches,
            s.ipb()
        );
        println!("bpred hit     {:.4}", s.branch_hit_ratio());
        println!("recoveries    {} ({} squashed)", s.recoveries, s.squashed);
        println!(
            "L1D misses    {} main / {} p-thread",
            s.l1d_main_misses, s.l1d_pthread_misses
        );
        if machine.is_spear() {
            println!(
                "triggers      {} accepted / {} busy / {} below-occupancy",
                s.triggers_accepted, s.triggers_ignored_busy, s.triggers_rejected_occupancy
            );
            println!(
                "episodes      {} completed / {} flush-aborted / {} missed / {} re-armed",
                s.preexec_completed,
                s.preexec_aborted_flush,
                s.preexec_aborted_missed,
                s.preexec_retargets
            );
            println!(
                "p-thread      {} insts, {} loads, {} faults, {} live-in copy cycles",
                s.pthread_insts, s.pthread_loads, s.pthread_faults, s.livein_copy_cycles
            );
            println!(
                "prefetches    {} timely / {} late of {} issued",
                s.useful_prefetches, s.late_prefetches, s.pthread_loads
            );
            println!("episode len   {}", s.episode_cycles);
            println!("extractions   {}", s.episode_extractions);
        }
        println!("\nCPI stack:");
        print!("{}", report::cpi_stack(s, commit_width));
        if machine.is_spear() && !s.dload_profiles.is_empty() {
            println!("\nd-load prefetch profiles:");
            print!("{}", report::dload_profiles(s));
        }
    }
    // The in-memory episode trace prints after (never interleaved with)
    // the statistics block, and only when it retained something.
    if let Some(t) = core.trace() {
        if trace.is_some() && !t.is_empty() {
            println!("\nepisode trace (last {} of {} events):", t.len(), t.total);
            for e in t.events() {
                println!("  {e}");
            }
        }
    }
}
