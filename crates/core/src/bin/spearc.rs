//! `spearc` — the SPEAR post-compiler driver.
//!
//! Compiles a program (a `.s` assembly file or a built-in workload) into a
//! SPEAR executable: profiles it, identifies delinquent loads, constructs
//! p-threads, and writes the `.spear` binary with the table attached.
//!
//! ```text
//! spearc input.s -o out.spear            # compile an assembly file
//! spearc workload:mcf -o mcf.spear       # compile a built-in workload
//! spearc input.s --report                # print the compile report only
//! spearc input.s --min-misses 32 --dcycle 240 --slice-cap 64
//! ```

use spear_compiler::{CompilerConfig, SpearCompiler};
use spear_isa::{binfile, parse_asm, Program};
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: spearc <input.s | workload:NAME[@scale=N][@seed=N]> [-o OUT.spear] [--report]\n\
         \x20      [--min-misses N] [--miss-fraction F] [--max-dloads N]\n\
         \x20      [--dcycle N] [--slice-cap N] [--edge-threshold F]\n\
         \x20      [--profile-insts N] [--no-mem-deps] [--dot]\n\n\
         built-in workloads: {}",
        spear_workloads::all()
            .iter()
            .map(|w| w.name)
            .collect::<Vec<_>>()
            .join(", ")
    );
    exit(2)
}

/// `workload:NAME[@scale=N][@seed=N]` or a `.s` path.
fn load_input(spec: &str) -> Program {
    if let Some(rest) = spec.strip_prefix("workload:") {
        let mut parts = rest.split('@');
        let name = parts.next().unwrap_or(rest);
        let Some(w) = spear_workloads::by_name(name) else {
            eprintln!("spearc: unknown workload `{name}`");
            exit(1)
        };
        let mut input = w.profile_input;
        for p in parts {
            if let Some(v) = p.strip_prefix("scale=") {
                input.scale = v.parse().unwrap_or_else(|_| {
                    eprintln!("spearc: bad scale `{v}`");
                    exit(2)
                });
            } else if let Some(v) = p.strip_prefix("seed=") {
                input.seed = v.parse().unwrap_or_else(|_| {
                    eprintln!("spearc: bad seed `{v}`");
                    exit(2)
                });
            } else {
                eprintln!("spearc: bad workload parameter `{p}`");
                exit(2)
            }
        }
        (w.build)(input)
    } else {
        let src = std::fs::read_to_string(spec).unwrap_or_else(|e| {
            eprintln!("spearc: cannot read `{spec}`: {e}");
            exit(1)
        });
        parse_asm(&src).unwrap_or_else(|e| {
            eprintln!("spearc: {spec}: {e}");
            exit(1)
        })
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut input: Option<String> = None;
    let mut output: Option<String> = None;
    let mut report_only = false;
    let mut dot = false;
    let mut cfg = CompilerConfig::default();

    let mut it = args.into_iter();
    let next_val = |it: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        it.next().unwrap_or_else(|| {
            eprintln!("spearc: {flag} needs a value");
            exit(2)
        })
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-o" => output = Some(next_val(&mut it, "-o")),
            "--report" => report_only = true,
            "--min-misses" => {
                cfg.slicer.dload_min_misses = next_val(&mut it, "--min-misses")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--miss-fraction" => {
                cfg.slicer.dload_miss_fraction = next_val(&mut it, "--miss-fraction")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--max-dloads" => {
                cfg.slicer.max_dloads = next_val(&mut it, "--max-dloads")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--dcycle" => {
                cfg.slicer.dcycle_limit = next_val(&mut it, "--dcycle")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--slice-cap" => {
                cfg.slicer.slice_cap = Some(
                    next_val(&mut it, "--slice-cap")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                )
            }
            "--edge-threshold" => {
                cfg.slicer.edge_threshold = next_val(&mut it, "--edge-threshold")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--profile-insts" => {
                cfg.profile_max_insts = next_val(&mut it, "--profile-insts")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--no-mem-deps" => cfg.slicer.follow_mem_deps = false,
            "--dot" => dot = true,
            _ if input.is_none() && !arg.starts_with('-') => input = Some(arg),
            _ => usage(),
        }
    }
    let Some(input) = input else { usage() };
    let program = load_input(&input);

    // Static diagnostics before compiling.
    for l in spear_isa::lint::lint(&program) {
        eprintln!("spearc: warning: {l}");
    }

    let (binary, report) = SpearCompiler::new(cfg)
        .compile(&program)
        .unwrap_or_else(|e| {
            eprintln!("spearc: {e}");
            exit(1)
        });

    println!(
        "profiled {} instructions; {} L1D misses; {} d-load candidate(s)",
        report.profiled_insts,
        report.total_misses,
        report.candidates.len()
    );
    for e in &report.built {
        println!(
            "  d-load @{:<6} slice {:>4} insts, {} live-ins, region d-cycle {:>8.1}, {} misses",
            e.dload_pc, e.slice_len, e.live_ins, e.dcycle, e.misses
        );
    }
    for (pc, reason) in &report.skipped {
        println!("  d-load @{pc:<6} skipped: {reason:?}");
    }

    if dot {
        // Graphviz exports next to the binary: the CFG and each slice.
        use spear_compiler::{cfg_dot, profile, slice_dot, Cfg, Dominators, LoopForest};
        let cfgg = Cfg::build(&program);
        let dom = Dominators::compute(&cfgg);
        let forest = LoopForest::compute(&cfgg, &dom);
        let prof = profile(
            &program,
            &cfgg,
            &forest,
            spear_mem::HierConfig::paper(),
            10_000_000,
        )
        .expect("profile for dot");
        let stem = input
            .strip_prefix("workload:")
            .unwrap_or(&input)
            .trim_end_matches(".s")
            .to_string();
        let cfg_path = format!("{stem}.cfg.dot");
        std::fs::write(&cfg_path, cfg_dot(&program, &cfgg, &forest)).expect("write dot");
        println!("wrote {cfg_path}");
        for e in &binary.table.entries {
            let path = format!("{stem}.slice{}.dot", e.dload_pc);
            std::fs::write(&path, slice_dot(&program, &prof, e, 0.25)).expect("write dot");
            println!("wrote {path}");
        }
    }
    if report_only {
        return;
    }
    let out = output.unwrap_or_else(|| {
        let base = input.strip_prefix("workload:").unwrap_or(&input);
        let base = base.split('@').next().unwrap_or(base);
        format!("{}.spear", base.trim_end_matches(".s"))
    });
    let bytes = binfile::save(&binary);
    std::fs::write(&out, &bytes).unwrap_or_else(|e| {
        eprintln!("spearc: cannot write `{out}`: {e}");
        exit(1)
    });
    println!(
        "wrote {out} ({} bytes: {} instructions, {} p-threads)",
        bytes.len(),
        binary.program.len(),
        binary.table.len()
    );
}
