//! Observability exporters: fold the CPU layer's lifecycle records and
//! windowed telemetry into external viewer formats.
//!
//! Three consumers are served:
//!
//! * [`write_konata`] — the Kanata/O3PipeView text log Konata renders as
//!   a per-instruction pipeline timeline (`spear-sim --pipeview FILE`);
//! * [`write_perfetto`] — Chrome trace-event JSON that opens directly in
//!   `ui.perfetto.dev`: one track per hardware context plus counter
//!   tracks for IFQ occupancy and outstanding misses
//!   (`spear-sim --perfetto FILE`);
//! * [`summarize_windows`] — folds the `window` rows of a JSONL trace
//!   into a per-window text table with an IPC sparkline
//!   (`spear-sim obs-summary FILE`).
//!
//! All three read only the public observability types re-exported from
//! `spear-cpu`; nothing here touches simulator state.

use serde::Deserialize;
use spear_cpu::{CounterSample, LifeRecord, WindowStat};
use std::io::{self, Write};

/// Pipeline lane stages a lifecycle record is unfolded into, in order:
/// fetch, dispatch/wait, issue/execute, completed-awaiting-retire.
const STAGES: [&str; 4] = ["F", "Ds", "Is", "Cm"];

/// The `(cycle, stage)` transitions of one record, in stage order.
/// Stages the instruction never reached (never issued, never completed)
/// are omitted; a squash ends whatever stage was live.
fn stage_starts(r: &LifeRecord) -> Vec<(u64, &'static str)> {
    let mut v = vec![(r.fetch_cycle, STAGES[0]), (r.dispatch_cycle, STAGES[1])];
    if r.issue_cycle > 0 {
        v.push((r.issue_cycle, STAGES[2]));
    }
    if r.complete_cycle > 0 {
        v.push((r.complete_cycle, STAGES[3]));
    }
    v
}

/// Write a Kanata 0004 log (the format Konata and gem5's O3PipeView
/// tooling consume) for the given lifecycle records.
///
/// Records are re-sorted by fetch cycle so the file's instruction ids
/// ascend in fetch order, the ordering Konata's lane layout expects.
/// Squashed instructions retire with type 1 (flush), committed and
/// spec-retired ones with type 0.
pub fn write_konata<W: Write>(w: &mut W, records: &[LifeRecord]) -> io::Result<()> {
    writeln!(w, "Kanata\t0004")?;
    if records.is_empty() {
        return Ok(());
    }
    let mut order: Vec<usize> = (0..records.len()).collect();
    order.sort_by_key(|&i| (records[i].fetch_cycle, records[i].seq));

    // Unfold each record into cycle-stamped lines, then emit them in
    // global cycle order with `C` lines advancing the clock.
    // `rank` keeps same-cycle lines in (uid, stage) order so the file
    // is deterministic and I-before-S holds per instruction.
    let mut events: Vec<(u64, u64, String)> = Vec::with_capacity(records.len() * 6);
    for (uid, &i) in order.iter().enumerate() {
        let r = &records[i];
        let uid = uid as u64;
        events.push((
            r.fetch_cycle,
            uid * 8,
            format!("I\t{uid}\t{}\t{}", r.seq, r.ctx),
        ));
        let label = if r.episode > 0 {
            format!("L\t{uid}\t0\t{:#x}: {} [ep{}]", r.pc, r.inst, r.episode)
        } else {
            format!("L\t{uid}\t0\t{:#x}: {}", r.pc, r.inst)
        };
        events.push((r.fetch_cycle, uid * 8 + 1, label));
        for (k, (cycle, stage)) in stage_starts(r).into_iter().enumerate() {
            events.push((
                cycle,
                uid * 8 + 2 + k as u64,
                format!("S\t{uid}\t0\t{stage}"),
            ));
        }
        let kind = if r.squashed { 1 } else { 0 };
        events.push((r.end_cycle, uid * 8 + 7, format!("R\t{uid}\t{uid}\t{kind}")));
    }
    events.sort_by_key(|a| (a.0, a.1));

    let mut clock = events[0].0;
    writeln!(w, "C=\t{clock}")?;
    for (cycle, _, line) in &events {
        if *cycle > clock {
            writeln!(w, "C\t{}", cycle - clock)?;
            clock = *cycle;
        }
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// Minimal JSON string escaping for trace-event name/args fields.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Write a Chrome trace-event JSON document (the format `ui.perfetto.dev`
/// and `chrome://tracing` open) for the given lifecycle records and
/// counter samples.
///
/// Layout: process 1 holds one thread track per hardware context (tid =
/// ctx index, named via `thread_name` metadata); every instruction is a
/// complete (`ph:"X"`) slice from its fetch cycle to its RUU exit, with
/// the stage stamps, episode id, and squash flag in `args`. The
/// change-compressed counter samples become two counter (`ph:"C"`)
/// tracks: IFQ occupancy and outstanding cache misses. Timestamps are in
/// cycles (rendered by the viewer as microseconds).
pub fn write_perfetto<W: Write>(
    w: &mut W,
    records: &[LifeRecord],
    samples: &[CounterSample],
) -> io::Result<()> {
    write!(w, "{{\"traceEvents\":[")?;
    let mut first = true;
    let sep = |w: &mut W, first: &mut bool| -> io::Result<()> {
        if *first {
            *first = false;
            Ok(())
        } else {
            write!(w, ",")
        }
    };

    let num_ctxs = records.iter().map(|r| r.ctx + 1).max().unwrap_or(1);
    for ctx in 0..num_ctxs {
        let name = if ctx == 0 {
            "ctx 0 (main)".to_string()
        } else {
            format!("ctx {ctx} (p-thread)")
        };
        sep(w, &mut first)?;
        write!(
            w,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{ctx},\
             \"args\":{{\"name\":\"{name}\"}}}}"
        )?;
    }

    for r in records {
        let dur = (r.end_cycle.saturating_sub(r.fetch_cycle)).max(1);
        let name = json_escape(&format!("{:#x}: {}", r.pc, r.inst));
        sep(w, &mut first)?;
        write!(
            w,
            "{{\"name\":\"{name}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
             \"ts\":{},\"dur\":{dur},\"args\":{{\"seq\":{},\"episode\":{},\
             \"fetch\":{},\"dispatch\":{},\"issue\":{},\"complete\":{},\
             \"end\":{},\"squashed\":{}}}}}",
            r.ctx,
            r.fetch_cycle,
            r.seq,
            r.episode,
            r.fetch_cycle,
            r.dispatch_cycle,
            r.issue_cycle,
            r.complete_cycle,
            r.end_cycle,
            r.squashed
        )?;
    }

    for s in samples {
        sep(w, &mut first)?;
        write!(
            w,
            "{{\"name\":\"ifq_occupancy\",\"ph\":\"C\",\"pid\":1,\"ts\":{},\
             \"args\":{{\"entries\":{}}}}}",
            s.cycle, s.ifq_occupancy
        )?;
        sep(w, &mut first)?;
        write!(
            w,
            "{{\"name\":\"outstanding_misses\",\"ph\":\"C\",\"pid\":1,\"ts\":{},\
             \"args\":{{\"fills\":{}}}}}",
            s.cycle, s.outstanding_misses
        )?;
    }
    write!(w, "],\"displayTimeUnit\":\"ns\"}}")?;
    Ok(())
}

/// Parse the `window` rows out of a JSONL trace. Non-window rows and
/// blank lines are skipped; a malformed line is an error (the file is
/// machine-written, so damage means truncation or corruption).
pub fn parse_window_rows(text: &str) -> Result<Vec<WindowStat>, String> {
    let mut out = Vec::new();
    for (n, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = serde::json::parse(line).map_err(|e| format!("line {}: {e}", n + 1))?;
        let is_window = matches!(v.field("event"), Ok(serde::Value::Str(s)) if s == "window");
        if !is_window {
            continue;
        }
        let stat = WindowStat::from_value(&v).map_err(|e| format!("line {}: {e}", n + 1))?;
        out.push(stat);
    }
    Ok(out)
}

/// Unicode sparkline of a series, scaled to its own maximum.
fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().cloned().fold(0.0_f64, f64::max);
    values
        .iter()
        .map(|&v| {
            if max <= 0.0 {
                BARS[0]
            } else {
                let idx = ((v / max) * (BARS.len() - 1) as f64).round() as usize;
                BARS[idx.min(BARS.len() - 1)]
            }
        })
        .collect()
}

/// Render the per-window table `spear-sim obs-summary` prints: one row
/// per window (IPC, MPKIs, mean IFQ occupancy, episode outcomes, and the
/// dominant stall cause with its share of lost slots), preceded by an
/// IPC sparkline across the whole run.
pub fn summarize_windows(windows: &[WindowStat]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if windows.is_empty() {
        out.push_str("no window rows (run with --window and --trace-file)\n");
        return out;
    }
    let ipcs: Vec<f64> = windows.iter().map(|w| w.ipc()).collect();
    let total_cycles: u64 = windows.iter().map(|w| w.cycles).sum();
    let total_committed: u64 = windows.iter().map(|w| w.committed).sum();
    let _ = writeln!(
        out,
        "{} windows, {} cycles, {} committed (IPC {:.4})",
        windows.len(),
        total_cycles,
        total_committed,
        if total_cycles > 0 {
            total_committed as f64 / total_cycles as f64
        } else {
            0.0
        }
    );
    let _ = writeln!(out, "IPC  {}", sparkline(&ipcs));
    let _ = writeln!(
        out,
        "{:>6} {:>10} {:>8} {:>7} {:>9} {:>8} {:>6} {:>9}  top stall",
        "window", "start", "cycles", "IPC", "L1D MPKI", "L2 MPKI", "IFQ", "eps(c/a)"
    );
    for w in windows {
        let (cause, slots) = w.top_stall_cause();
        let lost = w.cycle_account.lost_slots();
        let share = if lost > 0 {
            100.0 * slots as f64 / lost as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "{:>6} {:>10} {:>8} {:>7.3} {:>9.2} {:>8.2} {:>6.1} {:>9}  {} ({:.0}%)",
            w.index,
            w.start_cycle,
            w.cycles,
            w.ipc(),
            w.l1d_mpki(),
            w.l2_mpki(),
            w.mean_ifq_occupancy(),
            format!("{}/{}", w.episodes_completed, w.episodes_aborted),
            cause,
            share
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;
    use spear_isa::reg::{R0, R1};
    use spear_isa::{Inst, Opcode};

    fn record(seq: u64, ctx: usize, fetch: u64, end: u64, squashed: bool) -> LifeRecord {
        LifeRecord {
            seq,
            ctx,
            pc: 0x40 + seq as u32,
            inst: Inst::new(Opcode::Addi, R1, R0, R0, 1),
            episode: if ctx > 0 { 1 } else { 0 },
            fetch_cycle: fetch,
            dispatch_cycle: fetch + 1,
            issue_cycle: if squashed { 0 } else { fetch + 2 },
            complete_cycle: if squashed { 0 } else { fetch + 3 },
            end_cycle: end,
            squashed,
        }
    }

    #[test]
    fn konata_log_has_header_and_balanced_lines() {
        let records = vec![
            record(0, 0, 1, 10, false),
            record(1, 0, 2, 11, true),
            record(2, 1, 3, 12, false),
        ];
        let mut buf = Vec::new();
        write_konata(&mut buf, &records).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("Kanata\t0004"));
        assert_eq!(lines.next(), Some("C=\t1"));
        let count = |p: &str| text.lines().filter(|l| l.starts_with(p)).count();
        assert_eq!(count("I\t"), 3, "one I line per record");
        assert_eq!(count("L\t"), 3, "one label per record");
        assert_eq!(count("R\t"), 3, "one retire per record");
        assert_eq!(
            text.lines()
                .filter(|l| l.ends_with("\t1"))
                .filter(|l| l.starts_with("R\t"))
                .count(),
            1,
            "exactly the squashed record flushes"
        );
        // Clock lines only ever advance.
        let mut clock = 1u64;
        for l in text.lines().filter(|l| l.starts_with("C\t")) {
            let d: u64 = l[2..].parse().unwrap();
            assert!(d > 0);
            clock += d;
        }
        assert_eq!(clock, 12, "clock ends at the last event cycle");
        // The p-thread record labels its episode.
        assert!(text.contains("[ep1]"));
    }

    #[test]
    fn konata_log_orders_instructions_by_fetch_cycle() {
        // Retirement order differs from fetch order; uids follow fetch.
        let records = vec![record(7, 0, 20, 30, false), record(3, 0, 5, 40, false)];
        let mut buf = Vec::new();
        write_konata(&mut buf, &records).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let i_lines: Vec<&str> = text.lines().filter(|l| l.starts_with("I\t")).collect();
        assert_eq!(i_lines[0], "I\t0\t3\t0", "earliest fetch gets uid 0");
        assert_eq!(i_lines[1], "I\t1\t7\t0");
    }

    #[test]
    fn perfetto_trace_is_valid_json_with_all_tracks() {
        let records = vec![record(0, 0, 1, 10, false), record(1, 2, 3, 12, false)];
        let samples = vec![
            CounterSample {
                cycle: 1,
                ifq_occupancy: 3,
                outstanding_misses: 0,
            },
            CounterSample {
                cycle: 5,
                ifq_occupancy: 4,
                outstanding_misses: 2,
            },
        ];
        let mut buf = Vec::new();
        write_perfetto(&mut buf, &records, &samples).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let v = serde::json::parse(&text).expect("exporter emits valid JSON");
        let events = match v.field("traceEvents").unwrap() {
            serde::Value::Array(a) => a,
            other => panic!("traceEvents must be an array: {other:?}"),
        };
        let phase_count = |ph: &str| {
            events
                .iter()
                .filter(|e| matches!(e.field("ph"), Ok(serde::Value::Str(s)) if s == ph))
                .count()
        };
        assert_eq!(phase_count("M"), 3, "thread_name for ctxs 0..=2");
        assert_eq!(phase_count("X"), 2, "one slice per instruction");
        assert_eq!(phase_count("C"), 4, "two counters per sample");
        // Slices carry their stage stamps.
        let slice = events
            .iter()
            .find(|e| matches!(e.field("ph"), Ok(serde::Value::Str(s)) if s == "X"))
            .unwrap();
        let args = slice.field("args").unwrap();
        assert!(args.field("dispatch").is_ok());
        assert!(args.field("squashed").is_ok());
    }

    #[test]
    fn perfetto_slices_never_have_zero_duration() {
        // A record squashed the cycle it was fetched still renders.
        let mut r = record(0, 0, 4, 4, true);
        r.dispatch_cycle = 4;
        let mut buf = Vec::new();
        write_perfetto(&mut buf, &[r], &[]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\"dur\":1"));
    }

    #[test]
    fn window_rows_fold_into_a_summary_table() {
        // Two window rows as the trace sink writes them (flattened, with
        // the event tag), plus unrelated rows that must be skipped.
        let mk = |index: u64, committed: u64| {
            let stat = WindowStat {
                index,
                start_cycle: index * 100,
                cycles: 100,
                committed,
                l1d_misses: 10,
                l2_misses: 2,
                ifq_occupancy_sum: 250,
                triggers_accepted: 1,
                episodes_completed: 1,
                episodes_aborted: 0,
                ..Default::default()
            };
            let mut fields = vec![("event".to_string(), serde::Value::Str("window".into()))];
            if let serde::Value::Object(f) = stat.to_value() {
                fields.extend(f);
            }
            serde::json::to_string(&serde::Value::Object(fields))
        };
        let text = format!(
            "{}\n{{\"event\":\"commit\",\"cycle\":5,\"pc\":0,\"ctx\":0}}\n{}\n",
            mk(0, 50),
            mk(1, 150)
        );
        let windows = parse_window_rows(&text).unwrap();
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[1].committed, 150);
        let table = summarize_windows(&windows);
        assert!(
            table.contains("2 windows, 200 cycles, 200 committed"),
            "{table}"
        );
        assert!(table.contains("IPC  "), "{table}");
        assert!(table.contains('█'), "max window hits the top bar: {table}");
        let garbage = parse_window_rows("not json\n");
        assert!(garbage.is_err(), "corrupt lines are reported");
    }

    #[test]
    fn sparkline_scales_to_its_max() {
        assert_eq!(sparkline(&[0.0, 1.0, 2.0]), "▁▅█");
        assert_eq!(sparkline(&[0.0, 0.0]), "▁▁");
        assert_eq!(sparkline(&[]), "");
    }
}
