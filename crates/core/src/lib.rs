//! # spear — the SPEAR reproduction's top-level API
//!
//! Ties the whole stack together:
//!
//! - [`machines`] — the five evaluated machine models (baseline,
//!   SPEAR-128/256, SPEAR.sf-128/256),
//! - [`runner`] — compile-and-simulate plumbing with a parallel sweep
//!   helper,
//! - [`experiments`] — one entry point per table and figure of §5,
//! - [`report`] — renderers matching the paper's row/series formats.
//!
//! ```no_run
//! use spear::experiments::{compile_all, fig6};
//! use spear::report;
//!
//! let workloads = spear_workloads::all();
//! let compiled = compile_all(&workloads);
//! let matrix = fig6(&compiled);
//! println!("{}", report::ipc_matrix(&matrix));
//! ```

pub mod experiments;
pub mod export;
pub mod machines;
pub mod obs;
pub mod report;
pub mod runner;

pub use export::{StatsExport, SCHEMA_VERSION};
pub use machines::Machine;
pub use runner::{compile_workload, parallel_map, run_one, RunOutcome};
