//! Per-workload diagnostic: the compile report (d-loads, slices,
//! live-ins) followed by the full SPEAR counters on every machine model.
//! The first stop when a benchmark behaves unexpectedly.
//!
//! Run with: `cargo run --release -p spear --example diag [workload]`

use spear::machines::Machine;
use spear::runner::{compile_workload, run_one};
use spear_workloads::by_name;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "mcf".into());
    let Some(w) = by_name(&name) else {
        eprintln!("unknown workload `{name}`");
        std::process::exit(1);
    };
    let (table, report) = compile_workload(&w);
    println!("== compile report for {name}");
    println!(
        "profiled insts: {}  total misses: {}",
        report.profiled_insts, report.total_misses
    );
    for e in &report.built {
        println!(
            "  dload @{}: slice {} insts, {} live-ins, dcycle {:.1}, misses {}",
            e.dload_pc, e.slice_len, e.live_ins, e.dcycle, e.misses
        );
    }
    for (pc, r) in &report.skipped {
        println!("  skipped @{pc}: {r:?}");
    }
    for e in &table.entries {
        println!(
            "  entry @{} members {:?} live_ins {:?}",
            e.dload_pc, e.members, e.live_ins
        );
    }
    for m in Machine::ALL {
        let o = run_one(&w, &table, m, None);
        let s = &o.stats;
        println!(
            "== {m}: cycles={} ipc={:.4} misses(main)={} bpred={:.4}",
            s.cycles,
            s.ipc(),
            s.l1d_main_misses,
            s.branch_hit_ratio()
        );
        if m.is_spear() {
            println!(
                "   triggers acc={} busy={} occ={} | aborts flush={} missed={} | completed={} | pth insts={} loads={} faults={} | missed_extr={} livein_cyc={}",
                s.triggers_accepted,
                s.triggers_ignored_busy,
                s.triggers_rejected_occupancy,
                s.preexec_aborted_flush,
                s.preexec_aborted_missed,
                s.preexec_completed,
                s.pthread_insts,
                s.pthread_loads,
                s.pthread_faults,
                s.missed_extractions,
                s.livein_copy_cycles
            );
            println!(
                "   prefetches timely={} late={} | episode len {} | extractions {}",
                s.useful_prefetches, s.late_prefetches, s.episode_cycles, s.episode_extractions
            );
        }
        println!("   CPI stack:");
        print!("{}", o.cpi_stack());
        if m.is_spear() && !s.dload_profiles.is_empty() {
            println!("   d-load prefetch profiles:");
            print!("{}", spear::report::dload_profiles(s));
        }
    }
}
