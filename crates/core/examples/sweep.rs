//! Quick Figure 6 + Table 3 + Figure 8 sweep in one shot — the fast way
//! to see the whole evaluation landscape after a change (the bench
//! targets print the same data with paper comparisons).
//!
//! Run with: `cargo run --release -p spear --example sweep`

use spear::experiments::{compile_all, fig6, fig8, table3};
use spear::report;

fn main() {
    let ws = spear_workloads::all();
    let t0 = std::time::Instant::now();
    let compiled = compile_all(&ws);
    eprintln!("compiled in {:?}", t0.elapsed());
    let t0 = std::time::Instant::now();
    let m = fig6(&compiled);
    eprintln!("fig6 matrix in {:?}", t0.elapsed());
    println!("{}", report::ipc_matrix(&m));
    println!("{}", report::table3(&table3(&m)));
    println!("{}", report::fig8(&fig8(&m)));
}
