//! Quick Figure 6 + Table 3 + Figure 8 sweep in one shot — the fast way
//! to see the whole evaluation landscape after a change (the bench
//! targets print the same data with paper comparisons).
//!
//! Run with: `cargo run --release -p spear --example sweep`
//!
//! Set `SPEAR_SAMPLED=INTERVAL[:STRIDE]` (e.g. `SPEAR_SAMPLED=100000:10`)
//! to route the matrix through the checkpointed sampling campaign engine
//! instead of full-program simulation; `SPEAR_CAMPAIGN_DIR` picks the
//! campaign directory (resumable), defaulting to a per-process temp dir.

use spear::experiments::{compile_all, fig6, fig6_sampled, fig8, sample_spec_from_env, table3};
use spear::report;

fn main() {
    let ws = spear_workloads::all();
    let m = if let Some(sample) = sample_spec_from_env() {
        let dir = std::env::var("SPEAR_CAMPAIGN_DIR")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|_| {
                std::env::temp_dir().join(format!("spear-sweep-campaign-{}", std::process::id()))
            });
        eprintln!(
            "sampled sweep: interval {} stride {} (campaign dir {})",
            sample.interval_len,
            sample.stride,
            dir.display()
        );
        let t0 = std::time::Instant::now();
        let m = fig6_sampled(&ws, sample, &dir).unwrap_or_else(|e| {
            eprintln!("sweep: sampled campaign failed: {e}");
            std::process::exit(1)
        });
        eprintln!("sampled fig6 matrix in {:?}", t0.elapsed());
        m
    } else {
        let t0 = std::time::Instant::now();
        let compiled = compile_all(&ws);
        eprintln!("compiled in {:?}", t0.elapsed());
        let t0 = std::time::Instant::now();
        let m = fig6(&compiled);
        eprintln!("fig6 matrix in {:?}", t0.elapsed());
        m
    };
    println!("{}", report::ipc_matrix(&m));
    println!("{}", report::table3(&table3(&m)));
    println!("{}", report::fig8(&fig8(&m)));
}
