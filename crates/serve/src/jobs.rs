//! Job specs, job state, and the crash-safe on-disk job store.
//!
//! Every job lives in `root/jobs/<id>/`:
//!
//! ```text
//! jobs/job-0003/
//!   spec.json        # the submitted JobSpec (written before enqueue)
//!   campaign/        # a normal spear-campaign directory (cells.jsonl,
//!                    # manifest.json, progress.json, aggregates/)
//!   done.json        # terminal marker: finished, aggregates written
//!   error.json       # terminal marker: failed, with the error
//!   cancelled.json   # terminal marker: cancelled by the operator
//! ```
//!
//! State is *derived from the filesystem*, never from memory alone: a
//! job with no terminal marker is unfinished, whatever the process
//! thought before it died. That is the whole crash-safety story — a
//! restarted server rescans `jobs/`, re-enqueues everything unfinished,
//! and the campaign engine's own cells.jsonl resume logic guarantees a
//! `kill -9` costs at most the cells that were in flight.

use serde::{Deserialize, Serialize};
use spear_campaign::{CampaignSpec, MachinePoint, SampleSpec};
use spear_cpu::machine::Machine;
use spear_mem::LatencyConfig;
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// A sweep request, as submitted to `POST /jobs`. Mirrors the
/// `spear-sim campaign` flags one-to-one so a spec and a CLI invocation
/// describe the same grid.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Workload names (`"all"` expands to the full benchmark set).
    pub workloads: Vec<String>,
    /// Machine model names (CLI spellings, e.g. `spear-128`).
    pub machines: Vec<String>,
    /// Branch-predictor specs (`--bpreds`), each a `--bpred` spelling
    /// like `bimodal`, `gshare` or `tage:tables=6,...`. Empty means the
    /// paper default (`bimodal`). The grid is machines × bpreds.
    pub bpreds: Vec<String>,
    /// Instruction-supply front ends (`--frontends`): `program` and/or
    /// `trace`. Empty means the historical program-driven grid. `trace`
    /// cells replay a committed path recorded once per workload and
    /// shared through the server's trace cache.
    pub frontends: Vec<String>,
    /// Main-memory latency override in cycles (`--mem-latency`).
    pub mem_latency: Option<u32>,
    /// Interval length in instructions (`--interval`).
    pub interval: u64,
    /// Simulate every `stride`-th interval (`--stride`).
    pub stride: u64,
    /// Windowed-telemetry length in cycles; `0` means the default
    /// window (`--window`).
    pub window: Option<u64>,
    /// Stop after this many cells per server run (`--max-cells`; the
    /// job resumes on the next server start).
    pub max_cells: Option<u64>,
    /// Run each workload as a SimPoint phase-clustered campaign
    /// (`--simpoint`): simulate one weighted representative interval
    /// per phase instead of every interval.
    pub simpoint: bool,
    /// Fixed phase count (`--simpoint-k`); providing it implies
    /// `simpoint`, and `0`/absent means BIC auto-selection.
    pub simpoint_k: Option<u64>,
    /// Clustering seed (`--simpoint-seed`); providing it implies
    /// `simpoint`. Absent means the default seed.
    pub simpoint_seed: Option<u64>,
}

impl Default for JobSpec {
    fn default() -> JobSpec {
        JobSpec {
            workloads: Vec::new(),
            machines: Vec::new(),
            bpreds: Vec::new(),
            frontends: Vec::new(),
            mem_latency: None,
            interval: 100_000,
            stride: 1,
            window: None,
            max_cells: None,
            simpoint: false,
            simpoint_k: None,
            simpoint_seed: None,
        }
    }
}

// Hand-written (de)serialization so optional fields may simply be
// omitted from the submitted JSON — the derive requires every key.
impl Serialize for JobSpec {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("workloads".into(), self.workloads.to_value()),
            ("machines".into(), self.machines.to_value()),
            ("bpreds".into(), self.bpreds.to_value()),
            ("frontends".into(), self.frontends.to_value()),
            ("mem_latency".into(), self.mem_latency.to_value()),
            ("interval".into(), self.interval.to_value()),
            ("stride".into(), self.stride.to_value()),
            ("window".into(), self.window.to_value()),
            ("max_cells".into(), self.max_cells.to_value()),
            ("simpoint".into(), self.simpoint.to_value()),
            ("simpoint_k".into(), self.simpoint_k.to_value()),
            ("simpoint_seed".into(), self.simpoint_seed.to_value()),
        ])
    }
}

impl Deserialize for JobSpec {
    fn from_value(v: &serde::Value) -> Result<JobSpec, serde::Error> {
        let d = JobSpec::default();
        fn opt<T: Deserialize>(
            v: &serde::Value,
            name: &str,
            default: T,
        ) -> Result<T, serde::Error> {
            match v.field(name) {
                Ok(field) => T::from_value(field),
                Err(_) => Ok(default),
            }
        }
        Ok(JobSpec {
            workloads: Vec::<String>::from_value(v.field("workloads")?)?,
            machines: Vec::<String>::from_value(v.field("machines")?)?,
            bpreds: opt(v, "bpreds", d.bpreds)?,
            frontends: opt(v, "frontends", d.frontends)?,
            mem_latency: opt(v, "mem_latency", d.mem_latency)?,
            interval: opt(v, "interval", d.interval)?,
            stride: opt(v, "stride", d.stride)?,
            window: opt(v, "window", d.window)?,
            max_cells: opt(v, "max_cells", d.max_cells)?,
            simpoint: opt(v, "simpoint", d.simpoint)?,
            simpoint_k: opt(v, "simpoint_k", d.simpoint_k)?,
            simpoint_seed: opt(v, "simpoint_seed", d.simpoint_seed)?,
        })
    }
}

impl JobSpec {
    /// Resolve the wire spec into a runnable [`CampaignSpec`], mirroring
    /// `spear-sim campaign`'s validation exactly: `all` expansion,
    /// workload and machine name checks, nonzero interval/stride, the
    /// paper's default latency, and `--window 0` → default window.
    pub fn resolve(&self, workers: usize) -> Result<CampaignSpec, String> {
        let mut workloads = self.workloads.clone();
        if workloads.iter().any(|w| w == "all") {
            workloads = spear_workloads::all()
                .iter()
                .map(|w| w.name.to_string())
                .collect();
        }
        if workloads.is_empty() {
            return Err("spec needs at least one workload".into());
        }
        for name in &workloads {
            if spear_workloads::by_spec(name).is_none() {
                return Err(format!("unknown workload `{name}`"));
            }
        }
        if self.machines.is_empty() {
            return Err("spec needs at least one machine".into());
        }
        let mut machines = Vec::with_capacity(self.machines.len());
        for name in &self.machines {
            machines.push(
                Machine::from_cli_name(name).ok_or_else(|| format!("unknown machine `{name}`"))?,
            );
        }
        if self.interval == 0 || self.stride == 0 {
            return Err("interval and stride must be nonzero".into());
        }
        // `simpoint_k` / `simpoint_seed` imply simpoint, exactly like the
        // CLI's `--simpoint-k` / `--simpoint-seed` flags.
        let simpoint = (self.simpoint || self.simpoint_k.is_some() || self.simpoint_seed.is_some())
            .then(|| spear_campaign::SimpointSpec {
                k: self.simpoint_k.unwrap_or(0),
                seed: self
                    .simpoint_seed
                    .unwrap_or(spear_campaign::SimpointSpec::default().seed),
            });
        if simpoint.is_some() {
            if self.window.is_some() {
                return Err(
                    "simpoint is incompatible with window: windowed telemetry cannot be \
                     weight-blended"
                        .into(),
                );
            }
            if self.stride != 1 {
                return Err("simpoint requires stride 1 (phases replace systematic skip)".into());
            }
        }
        let mut bpreds = Vec::new();
        let default_bpreds = ["bimodal".to_string()];
        for spec in if self.bpreds.is_empty() {
            &default_bpreds[..]
        } else {
            &self.bpreds[..]
        } {
            bpreds.push(
                spear_bpred::PredictorConfig::paper()
                    .with_spec(spec)
                    .map_err(|e| format!("bad predictor spec `{spec}`: {e}"))?,
            );
        }
        for f in &self.frontends {
            if f != "program" && f != "trace" {
                return Err(format!(
                    "unknown front end `{f}` (expected `program` or `trace`)"
                ));
            }
        }
        let latency = self.mem_latency.map(LatencyConfig::sweep_point);
        let mem_latency = latency.unwrap_or_else(LatencyConfig::paper).memory;
        let mut points = Vec::with_capacity(machines.len() * bpreds.len());
        for &m in &machines {
            for &bp in &bpreds {
                let mut config = m.config(latency);
                config.bpred = bp;
                points.push(MachinePoint {
                    machine: m.name().to_string(),
                    mem_latency,
                    config,
                });
            }
        }
        Ok(CampaignSpec {
            workloads,
            points,
            frontends: self.frontends.clone(),
            sample: SampleSpec {
                interval_len: self.interval,
                stride: self.stride,
            },
            threads: workers,
            max_cells: self.max_cells,
            window: self.window.map(|n| {
                if n == 0 {
                    spear_cpu::DEFAULT_WINDOW_CYCLES
                } else {
                    n
                }
            }),
            simpoint,
        })
    }
}

/// Where a job is in its life.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the queue (also: unfinished after a restart).
    Queued,
    /// The runner is executing its campaign right now.
    Running,
    /// Finished; aggregates are on disk.
    Done,
    /// The campaign failed; `error.json` has the message.
    Failed,
    /// Cancelled by the operator; completed cells remain on disk.
    Cancelled,
}

impl JobState {
    /// Wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// No further work will happen on this job.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

/// The last progress callback of a running job, kept for `GET /jobs/<id>`.
#[derive(Clone, Copy, Debug, Default)]
pub struct ProgressLite {
    /// Cells finished (including previously completed ones).
    pub done: u64,
    /// Total cells in the campaign.
    pub total: u64,
    /// Cells executed by the current invocation.
    pub executed: u64,
    /// Wall-clock ms since the current invocation started.
    pub elapsed_ms: u64,
    /// Estimated remaining ms (None until the first cell finishes).
    pub eta_ms: Option<u64>,
}

/// A registry entry: everything the control plane knows about one job.
pub struct Job {
    /// Job id (`job-NNNN`).
    pub id: String,
    /// The submitted spec.
    pub spec: JobSpec,
    /// Current state (kept in sync with the disk markers).
    pub state: JobState,
    /// Failure message, for `state == Failed`.
    pub error: Option<String>,
    /// Cooperative cancellation flag handed to the campaign engine.
    pub cancel: Arc<AtomicBool>,
    /// True once the operator asked for cancellation — distinguishes a
    /// user cancel from a shutdown drain, which also sets `cancel` but
    /// must leave the job resumable.
    pub cancel_requested: bool,
    /// Latest progress snapshot while running.
    pub progress: Option<ProgressLite>,
}

impl Job {
    /// A fresh registry entry in `state`.
    pub fn new(id: String, spec: JobSpec, state: JobState) -> Job {
        Job {
            id,
            spec,
            state,
            error: None,
            cancel: Arc::new(AtomicBool::new(false)),
            cancel_requested: false,
            progress: None,
        }
    }
}

/// `root/jobs/<id>`.
pub fn job_dir(root: &Path, id: &str) -> PathBuf {
    root.join("jobs").join(id)
}

/// The job's campaign directory, `root/jobs/<id>/campaign`.
pub fn campaign_dir(root: &Path, id: &str) -> PathBuf {
    job_dir(root, id).join("campaign")
}

/// Persist a terminal marker file (`done.json` / `error.json` /
/// `cancelled.json`). Markers are tiny and written atomically via
/// temp-file + rename so a crash never leaves a torn marker.
pub fn write_marker(root: &Path, id: &str, name: &str, contents: &str) -> Result<(), String> {
    let dir = job_dir(root, id);
    let tmp = dir.join(format!("{name}.tmp"));
    let fin = dir.join(name);
    std::fs::write(&tmp, contents).map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, &fin)
        .map_err(|e| format!("cannot rename {} -> {}: {e}", tmp.display(), fin.display()))
}

/// Read a job's state from its markers alone.
pub fn state_on_disk(root: &Path, id: &str) -> JobState {
    let dir = job_dir(root, id);
    if dir.join("done.json").exists() {
        JobState::Done
    } else if dir.join("error.json").exists() {
        JobState::Failed
    } else if dir.join("cancelled.json").exists() {
        JobState::Cancelled
    } else {
        JobState::Queued
    }
}

/// Scan `root/jobs/` and rebuild the registry: every job directory with
/// a parseable `spec.json`, sorted by id so re-enqueue order matches
/// submission order. Unfinished jobs (no terminal marker) come back as
/// [`JobState::Queued`] — including ones that were mid-run when the
/// previous server process died.
pub fn scan_jobs(root: &Path) -> Result<Vec<Job>, String> {
    let jobs_root = root.join("jobs");
    if !jobs_root.exists() {
        return Ok(Vec::new());
    }
    let mut ids = Vec::new();
    let entries = std::fs::read_dir(&jobs_root)
        .map_err(|e| format!("cannot read {}: {e}", jobs_root.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", jobs_root.display()))?;
        if entry.path().is_dir() {
            ids.push(entry.file_name().to_string_lossy().into_owned());
        }
    }
    ids.sort();
    let mut jobs = Vec::with_capacity(ids.len());
    for id in ids {
        let spec_path = job_dir(root, &id).join("spec.json");
        let Ok(text) = std::fs::read_to_string(&spec_path) else {
            // A directory without a spec is a half-created job whose
            // submission never completed; ignore it.
            continue;
        };
        let spec: JobSpec = serde::json::from_str(&text)
            .map_err(|e| format!("corrupt {}: {e:?}", spec_path.display()))?;
        let state = state_on_disk(root, &id);
        let mut job = Job::new(id, spec, state);
        if state == JobState::Failed {
            job.error = std::fs::read_to_string(job_dir(root, &job.id).join("error.json"))
                .ok()
                .and_then(|t| {
                    serde::json::from_str::<serde::Value>(&t)
                        .ok()
                        .and_then(|v| match v.field("error") {
                            Ok(serde::Value::Str(s)) => Some(s.clone()),
                            _ => None,
                        })
                });
        }
        jobs.push(job);
    }
    Ok(jobs)
}

/// The next unused job id given the existing registry: `job-NNNN` with
/// a strictly increasing suffix, so ids stay unique across restarts.
pub fn next_id(existing: &[Job]) -> String {
    let max = existing
        .iter()
        .filter_map(|j| j.id.strip_prefix("job-"))
        .filter_map(|n| n.parse::<u64>().ok())
        .max()
        .unwrap_or(0);
    format!("job-{:04}", max + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_roundtrips_through_json() {
        let spec = JobSpec {
            workloads: vec!["pointer".into()],
            machines: vec!["baseline".into(), "spear-128".into()],
            bpreds: vec!["bimodal".into(), "tage".into()],
            frontends: vec!["program".into(), "trace".into()],
            mem_latency: Some(200),
            interval: 50_000,
            stride: 2,
            window: Some(0),
            max_cells: None,
            simpoint: true,
            simpoint_k: Some(4),
            simpoint_seed: Some(7),
        };
        let text = serde::json::to_string(&spec);
        let back: JobSpec = serde::json::from_str(&text).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn optional_fields_may_be_omitted() {
        let spec: JobSpec =
            serde::json::from_str("{\"workloads\":[\"pointer\"],\"machines\":[\"baseline\"]}")
                .unwrap();
        assert_eq!(spec.interval, 100_000);
        assert_eq!(spec.stride, 1);
        assert_eq!(spec.mem_latency, None);
        assert_eq!(spec.max_cells, None);
        assert!(
            spec.bpreds.is_empty(),
            "bpreds defaults to the paper's bimodal"
        );
        assert!(
            spec.frontends.is_empty(),
            "frontends defaults to the historical program grid"
        );
        assert!(!spec.simpoint, "simpoint defaults off");
        assert_eq!(spec.simpoint_k, None);
        assert_eq!(spec.simpoint_seed, None);
    }

    #[test]
    fn resolve_maps_simpoint_and_rejects_bad_combinations() {
        let mut spec = JobSpec {
            workloads: vec!["pointer".into(), "pointer@x100".into()],
            machines: vec!["baseline".into()],
            simpoint: true,
            ..JobSpec::default()
        };
        let resolved = spec.resolve(2).unwrap();
        assert_eq!(
            resolved.simpoint,
            Some(spear_campaign::SimpointSpec { k: 0, seed: 42 }),
            "bare simpoint means auto-k with the default seed"
        );
        assert_eq!(
            resolved.workloads,
            vec!["pointer".to_string(), "pointer@x100".to_string()],
            "scaled workload specs survive resolution verbatim"
        );

        // k/seed imply simpoint even when the flag itself is omitted.
        spec.simpoint = false;
        spec.simpoint_k = Some(4);
        spec.simpoint_seed = Some(7);
        assert_eq!(
            spec.resolve(2).unwrap().simpoint,
            Some(spear_campaign::SimpointSpec { k: 4, seed: 7 })
        );

        spec.window = Some(0);
        assert!(spec
            .resolve(2)
            .unwrap_err()
            .contains("incompatible with window"));
        spec.window = None;
        spec.stride = 2;
        assert!(spec.resolve(2).unwrap_err().contains("requires stride 1"));
        spec.stride = 1;
        spec.workloads = vec!["pointer@x0".into()];
        assert!(
            spec.resolve(2).unwrap_err().contains("unknown workload"),
            "a zero scale multiplier is rejected"
        );
    }

    #[test]
    fn resolve_validates_names_and_numbers() {
        let mut spec = JobSpec {
            workloads: vec!["pointer".into()],
            machines: vec!["baseline".into()],
            ..JobSpec::default()
        };
        assert!(spec.resolve(2).is_ok());
        spec.workloads = vec!["no-such-workload".into()];
        assert!(spec.resolve(2).unwrap_err().contains("unknown workload"));
        spec.workloads = vec!["pointer".into()];
        spec.machines = vec!["cray-1".into()];
        assert!(spec.resolve(2).unwrap_err().contains("unknown machine"));
        spec.machines = vec!["baseline".into()];
        spec.stride = 0;
        assert!(spec.resolve(2).unwrap_err().contains("nonzero"));
        spec.stride = 1;
        spec.bpreds = vec!["tage:tables=zero".into()];
        assert!(spec
            .resolve(2)
            .unwrap_err()
            .contains("bad predictor spec `tage:tables=zero`"));
        spec.bpreds = Vec::new();
        spec.frontends = vec!["oracle".into()];
        assert!(spec
            .resolve(2)
            .unwrap_err()
            .contains("unknown front end `oracle`"));
        spec.frontends = vec!["program".into(), "trace".into()];
        let resolved = spec.resolve(2).unwrap();
        assert_eq!(resolved.frontends, vec!["program", "trace"]);
    }

    #[test]
    fn resolve_expands_the_machine_by_predictor_grid() {
        let spec = JobSpec {
            workloads: vec!["pointer".into()],
            machines: vec!["baseline".into(), "spear-128".into()],
            bpreds: vec!["bimodal".into(), "tage".into()],
            ..JobSpec::default()
        };
        let resolved = spec.resolve(2).unwrap();
        assert_eq!(resolved.points.len(), 4, "machines x bpreds");
        let labels: Vec<(String, String)> = resolved
            .points
            .iter()
            .map(|p| (p.machine.clone(), p.config.bpred.spec_label()))
            .collect();
        assert_eq!(
            labels[0],
            ("superscalar".to_string(), "bimodal".to_string())
        );
        assert_eq!(labels[1], ("superscalar".to_string(), "tage".to_string()));
        assert_eq!(labels[3], ("SPEAR-128".to_string(), "tage".to_string()));
        // Omitted bpreds resolves to a pure-bimodal grid.
        let plain = JobSpec {
            workloads: vec!["pointer".into()],
            machines: vec!["baseline".into()],
            ..JobSpec::default()
        }
        .resolve(2)
        .unwrap();
        assert_eq!(plain.points.len(), 1);
        assert_eq!(plain.points[0].config.bpred.spec_label(), "bimodal");
    }

    #[test]
    fn resolve_expands_all_and_applies_latency() {
        let spec = JobSpec {
            workloads: vec!["all".into()],
            machines: vec!["spear-256".into()],
            mem_latency: Some(300),
            ..JobSpec::default()
        };
        let resolved = spec.resolve(4).unwrap();
        assert_eq!(resolved.workloads.len(), spear_workloads::all().len());
        assert_eq!(resolved.points.len(), 1);
        assert_eq!(resolved.points[0].machine, "SPEAR-256");
        assert_eq!(resolved.points[0].mem_latency, 300);
        assert_eq!(resolved.threads, 4);
    }

    #[test]
    fn ids_increase_and_scan_orders_by_id() {
        let jobs = vec![
            Job::new("job-0002".into(), JobSpec::default(), JobState::Done),
            Job::new("job-0010".into(), JobSpec::default(), JobState::Queued),
        ];
        assert_eq!(next_id(&jobs), "job-0011");
        assert_eq!(next_id(&[]), "job-0001");
    }

    #[test]
    fn disk_state_tracks_markers() {
        let root = std::env::temp_dir().join(format!("spear-serve-jobs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let id = "job-0001";
        std::fs::create_dir_all(job_dir(&root, id)).unwrap();
        std::fs::write(
            job_dir(&root, id).join("spec.json"),
            serde::json::to_string(&JobSpec {
                workloads: vec!["pointer".into()],
                machines: vec!["baseline".into()],
                ..JobSpec::default()
            }),
        )
        .unwrap();
        assert_eq!(state_on_disk(&root, id), JobState::Queued);
        let scanned = scan_jobs(&root).unwrap();
        assert_eq!(scanned.len(), 1);
        assert_eq!(scanned[0].state, JobState::Queued);

        write_marker(&root, id, "done.json", "{}").unwrap();
        assert_eq!(state_on_disk(&root, id), JobState::Done);
        assert_eq!(scan_jobs(&root).unwrap()[0].state, JobState::Done);
        let _ = std::fs::remove_dir_all(&root);
    }
}
