//! # spear-serve — campaign-as-a-service
//!
//! A resident, sharded simulation server: sweep campaigns are submitted
//! as JSON jobs over a localhost HTTP/1.1 control plane, queued in a
//! bounded FIFO, and executed one at a time through the ordinary
//! [`spear_campaign::Campaign`] machinery with all worker threads.
//! Warm per-workload state (compiled binary + functional-pass
//! checkpoints) is shared across jobs through the campaign crate's
//! [`spear_campaign::ShardCache`], so ten jobs over the same workloads
//! pay for one functional pass, not ten.
//!
//! The server is *crash-safe by store, not by protocol*: job state
//! lives in marker files under `root/jobs/<id>/` and cell results in
//! each campaign's append-only `cells.jsonl`. A restart — graceful or
//! `kill -9` — rescans the store, re-enqueues whatever is unfinished,
//! and resumes it losing at most in-flight cells. Aggregate envelopes
//! are written by the same [`spear_campaign::write_aggregate_envelopes`]
//! the CLI uses, so served results are byte-identical to `spear-sim
//! campaign` output by construction.
//!
//! Control plane (all JSON unless noted):
//!
//! | Endpoint                    | Meaning                                      |
//! |-----------------------------|----------------------------------------------|
//! | `POST /jobs`                | submit a sweep spec; `429` when queue full   |
//! | `GET /jobs`                 | list all jobs with states                    |
//! | `GET /jobs/<id>`            | state + live progress + ETA                  |
//! | `GET /jobs/<id>/aggregates` | aggregate envelopes (raw, byte-identical)    |
//! | `POST /jobs/<id>/cancel`    | cooperative cancel                           |
//! | `GET /metrics`              | Prometheus text: queue, cache, progress      |
//! | `GET /healthz`              | liveness probe                               |
//! | `POST /shutdown`            | graceful drain and exit                      |

pub mod client;
pub mod http;
pub mod jobs;
pub mod server;

pub use jobs::{Job, JobSpec, JobState, ProgressLite};
pub use server::{install_signal_handlers, ServeConfig, Server};
