//! A deliberately small HTTP/1.1 layer: request parsing with hard
//! limits, response writing, keep-alive and pipelining.
//!
//! The control plane serves a handful of JSON endpoints on localhost;
//! pulling in a full web stack for that would dwarf the simulator
//! itself, and the build environment has no registry access anyway.
//! What *is* non-negotiable even for a toy server is input discipline:
//! bounded header and body sizes, strict `Content-Length` handling, and
//! clean errors for malformed requests — those are exactly the paths
//! `tests/http_edge.rs` pins.

use std::io::{BufRead, Write};

/// Maximum bytes of request line + headers before the request is
/// rejected with `431 Request Header Fields Too Large`.
pub const MAX_HEADER_BYTES: usize = 8 * 1024;

/// Maximum accepted `Content-Length`, rejected with `413 Content Too
/// Large` above this. Sweep specs are a few hundred bytes; a megabyte
/// is generous.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Method token, uppercased as received (`GET`, `POST`, ...).
    pub method: String,
    /// Request target as received (e.g. `/jobs/job-0001`).
    pub path: String,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value for `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Did the client ask to close the connection after this exchange?
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// Body as UTF-8 (lossy — the JSON parser will reject garbage).
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum ParseError {
    /// The peer closed the connection before sending a request — the
    /// normal end of a keep-alive connection, not an error to report.
    Closed,
    /// Request line + headers exceeded [`MAX_HEADER_BYTES`] → 431.
    HeaderTooLarge,
    /// `Content-Length` exceeded [`MAX_BODY_BYTES`] → 413.
    BodyTooLarge,
    /// Malformed request line, header, or `Content-Length` → 400.
    BadRequest(String),
    /// The socket failed mid-request; the connection is unusable.
    Io(String),
}

impl ParseError {
    /// The response to send back, if one can be sent at all.
    pub fn response(&self) -> Option<Response> {
        match self {
            ParseError::Closed | ParseError::Io(_) => None,
            ParseError::HeaderTooLarge => Some(Response::json(
                431,
                "{\"error\":\"request header fields too large\"}".into(),
            )),
            ParseError::BodyTooLarge => Some(Response::json(
                413,
                "{\"error\":\"request body too large\"}".into(),
            )),
            ParseError::BadRequest(msg) => Some(Response::error(400, msg)),
        }
    }
}

/// Read one request from `r`. Designed to be called in a loop over a
/// `BufReader<TcpStream>`: buffered bytes beyond the current request
/// are left in place, which is what makes pipelined requests work.
pub fn read_request(r: &mut impl BufRead) -> Result<Request, ParseError> {
    let mut budget = MAX_HEADER_BYTES;
    let line = read_line(r, &mut budget, true)?;
    let mut parts = line.split(' ');
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(ParseError::BadRequest(format!(
            "malformed request line `{line}`"
        )));
    };
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Err(ParseError::BadRequest(format!(
            "malformed request line `{line}`"
        )));
    }
    if method.is_empty() || path.is_empty() {
        return Err(ParseError::BadRequest("empty method or target".into()));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(r, &mut budget, false)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseError::BadRequest(format!("malformed header `{line}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let req = Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body: Vec::new(),
    };
    let len = match req.header("content-length") {
        None => 0,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| ParseError::BadRequest(format!("invalid content-length `{v}`")))?,
    };
    if len > MAX_BODY_BYTES {
        return Err(ParseError::BodyTooLarge);
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)
        .map_err(|e| ParseError::Io(format!("short body read: {e}")))?;
    Ok(Request { body, ..req })
}

/// Read one CRLF (or bare-LF) terminated line within the shared header
/// byte budget. `first` distinguishes "connection closed before any
/// request" from "connection died mid-request".
fn read_line(r: &mut impl BufRead, budget: &mut usize, first: bool) -> Result<String, ParseError> {
    let mut buf = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                return Err(if first && buf.is_empty() {
                    ParseError::Closed
                } else {
                    ParseError::Io("connection closed mid-request".into())
                });
            }
            Ok(_) => {}
            Err(e) => return Err(ParseError::Io(e.to_string())),
        }
        if *budget == 0 {
            return Err(ParseError::HeaderTooLarge);
        }
        *budget -= 1;
        if byte[0] == b'\n' {
            break;
        }
        buf.push(byte[0]);
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf).map_err(|_| ParseError::BadRequest("non-UTF-8 header bytes".into()))
}

/// A response to serialize onto the wire.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body,
        }
    }

    /// A plain-text response (used by `/metrics`).
    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body,
        }
    }

    /// A uniform JSON error body.
    pub fn error(status: u16, msg: &str) -> Response {
        Response::json(
            status,
            format!(
                "{{\"error\":{}}}",
                serde::json::to_string(&serde::Value::Str(msg.to_string()))
            ),
        )
    }

    /// Write the response; `keep_alive` picks the `Connection` header.
    pub fn write_to(&self, w: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        )?;
        w.write_all(self.body.as_bytes())?;
        w.flush()
    }
}

/// Reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Content Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Request, ParseError> {
        read_request(&mut Cursor::new(raw.as_bytes().to_vec()))
    }

    #[test]
    fn parses_a_simple_get() {
        let req = parse("GET /jobs HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_body_by_content_length() {
        let req = parse("POST /jobs HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn clean_eof_is_closed_not_an_error_report() {
        let err = parse("").unwrap_err();
        assert!(matches!(err, ParseError::Closed));
        assert!(err.response().is_none());
    }

    #[test]
    fn oversized_headers_are_rejected_with_431() {
        let raw = format!(
            "GET / HTTP/1.1\r\nX-Big: {}\r\n\r\n",
            "a".repeat(MAX_HEADER_BYTES)
        );
        let err = parse(&raw).unwrap_err();
        assert!(matches!(err, ParseError::HeaderTooLarge));
        assert_eq!(err.response().unwrap().status, 431);
    }

    #[test]
    fn bad_content_length_is_a_400() {
        let err = parse("POST / HTTP/1.1\r\nContent-Length: four\r\n\r\n").unwrap_err();
        assert!(matches!(err, ParseError::BadRequest(_)));
        assert_eq!(err.response().unwrap().status, 400);
    }

    #[test]
    fn huge_content_length_is_a_413_without_reading_the_body() {
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let err = parse(&raw).unwrap_err();
        assert!(matches!(err, ParseError::BodyTooLarge));
        assert_eq!(err.response().unwrap().status, 413);
    }

    #[test]
    fn malformed_request_line_is_a_400() {
        for raw in ["GARBAGE\r\n\r\n", "GET /\r\n\r\n", "GET / SPDY/9\r\n\r\n"] {
            let err = parse(raw).unwrap_err();
            assert!(matches!(err, ParseError::BadRequest(_)), "raw={raw:?}");
        }
    }

    #[test]
    fn two_pipelined_requests_parse_back_to_back() {
        let raw = "POST /jobs HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi\
                   GET /metrics HTTP/1.1\r\n\r\n";
        let mut cur = Cursor::new(raw.as_bytes().to_vec());
        let a = read_request(&mut cur).unwrap();
        assert_eq!((a.method.as_str(), a.body.as_slice()), ("POST", &b"hi"[..]));
        let b = read_request(&mut cur).unwrap();
        assert_eq!((b.method.as_str(), b.path.as_str()), ("GET", "/metrics"));
        assert!(matches!(
            read_request(&mut cur).unwrap_err(),
            ParseError::Closed
        ));
    }

    #[test]
    fn response_wire_format_has_content_length_and_connection() {
        let mut out = Vec::new();
        Response::json(201, "{\"id\":\"j\"}".into())
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 201 Created\r\n"));
        assert!(text.contains("Content-Length: 10\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"id\":\"j\"}"));
    }
}
