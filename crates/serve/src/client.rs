//! A minimal HTTP/1.1 client for the control plane — enough for
//! `spear-sim client`, the integration tests, and CI smoke scripts to
//! talk to the server without external tooling.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::Path;
use std::time::Duration;

/// Issue one `method path` request against `addr` (`host:port`),
/// returning `(status, body)`. Connections are one-shot
/// (`Connection: close`); the control plane is low-traffic enough that
/// connection reuse buys nothing.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| format!("cannot set read timeout: {e}"))?;
    let body = body.unwrap_or("");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(req.as_bytes())
        .map_err(|e| format!("cannot send request to {addr}: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("cannot read response from {addr}: {e}"))?;
    parse_response(&raw)
}

/// Split a raw HTTP/1.1 response into `(status, body)`.
fn parse_response(raw: &[u8]) -> Result<(u16, String), String> {
    let text = String::from_utf8_lossy(raw);
    let Some((head, body)) = text.split_once("\r\n\r\n") else {
        return Err(format!("malformed HTTP response: {text:?}"));
    };
    let status_line = head.lines().next().unwrap_or("");
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("malformed status line `{status_line}`"))?;
    // `Connection: close` + read_to_end means the body is simply the
    // rest of the stream; Content-Length is advisory here.
    Ok((status, body.to_string()))
}

/// Read the address a running server advertised in `<root>/server.addr`.
pub fn read_server_addr(root: &Path) -> Result<String, String> {
    let path = root.join("server.addr");
    std::fs::read_to_string(&path)
        .map(|s| s.trim().to_string())
        .map_err(|e| {
            format!(
                "cannot read {} (is the server running?): {e}",
                path.display()
            )
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_status_and_body() {
        let raw = b"HTTP/1.1 201 Created\r\nContent-Type: application/json\r\nContent-Length: 2\r\n\r\n{}";
        assert_eq!(parse_response(raw).unwrap(), (201, "{}".to_string()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http").is_err());
        assert!(parse_response(b"HTTP/1.1 huh\r\n\r\n").is_err());
    }
}
