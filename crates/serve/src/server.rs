//! The resident campaign server: a TCP accept loop, a bounded job
//! queue, and a single runner thread that executes jobs FIFO through
//! the ordinary [`spear_campaign::Campaign`] machinery.
//!
//! Design invariants:
//!
//! * **One writer per campaign directory.** Jobs execute strictly one
//!   at a time (each using all `workers` threads internally), so no two
//!   jobs ever race on the filesystem, and a job's aggregates are
//!   written by [`spear_campaign::write_aggregate_envelopes`] — the
//!   same function the CLI uses, which makes server and CLI output
//!   byte-identical by construction.
//! * **The queue is bounded.** `POST /jobs` uses `try_send`; a full
//!   queue is an HTTP 429, not unbounded memory growth.
//! * **Crash safety is the store's job.** The server never needs a
//!   clean shutdown to be correct: job state lives in marker files
//!   (see [`crate::jobs`]) and cell results in the campaign's
//!   append-only `cells.jsonl`. On start the server rescans `jobs/`
//!   and re-enqueues everything unfinished, so a `kill -9` costs at
//!   most the cells that were in flight.
//! * **Shutdown drains, it does not abort.** SIGTERM or
//!   `POST /shutdown` stops accepting connections, cancels the running
//!   campaign cooperatively (in-flight cells finish and are flushed),
//!   and leaves interrupted jobs unmarked so the next start resumes
//!   them.

use crate::http::{self, Request, Response};
use crate::jobs::{self, Job, JobSpec, JobState, ProgressLite};
use parking_lot::Mutex;
use serde::Value;
use spear_campaign::{
    Campaign, HeartbeatDoc, ProgressSnapshot, RunOptions, ShardCache, TraceCache,
};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How the accept loop polls for shutdown while the listener is
/// nonblocking.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// How often the runner re-checks for shutdown while the queue is idle.
const RUNNER_POLL: Duration = Duration::from_millis(100);

/// Server configuration (the `spear-sim serve` flags).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Server root: holds `jobs/` and `server.addr`.
    pub root: PathBuf,
    /// Bind address, e.g. `127.0.0.1:7171` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads per campaign (0 = all available cores).
    pub workers: usize,
    /// Bounded job-queue capacity; submissions beyond it get HTTP 429.
    pub queue_cap: usize,
    /// Checkpoint-shard cache budget in bytes.
    pub cache_bytes: u64,
}

impl ServeConfig {
    /// Defaults for everything but the root.
    pub fn new(root: impl Into<PathBuf>) -> ServeConfig {
        ServeConfig {
            root: root.into(),
            addr: "127.0.0.1:0".into(),
            workers: 0,
            queue_cap: 16,
            cache_bytes: 256 * 1024 * 1024,
        }
    }
}

/// Set by the SIGTERM/SIGINT handler; polled by every accept loop.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

/// Install process-wide SIGTERM/SIGINT handlers that request a
/// graceful drain (idempotent; no-op off Unix). Kept separate from
/// [`Server::run`] so embedding tests can opt out.
pub fn install_signal_handlers() {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        extern "C" fn on_signal(_sig: i32) {
            SIGNALLED.store(true, Ordering::SeqCst);
        }
        let handler: extern "C" fn(i32) = on_signal;
        unsafe {
            signal(15, handler as usize); // SIGTERM
            signal(2, handler as usize); // SIGINT
        }
    }
}

struct State {
    root: PathBuf,
    workers: usize,
    queue_cap: usize,
    shutdown: AtomicBool,
    registry: Mutex<Vec<Job>>,
    tx: crossbeam::channel::Sender<String>,
    cache: ShardCache,
    traces: TraceCache,
    started: Instant,
    http_requests: AtomicU64,
    jobs_submitted: AtomicU64,
    jobs_rejected: AtomicU64,
}

impl State {
    fn find<'a>(reg: &'a mut [Job], id: &str) -> Option<&'a mut Job> {
        reg.iter_mut().find(|j| j.id == id)
    }

    /// Request a graceful drain: stop accepting, cancel the running
    /// campaign (queued jobs simply stay queued on disk).
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for job in self.registry.lock().iter() {
            job.cancel.store(true, Ordering::SeqCst);
        }
    }
}

/// A bound, not-yet-running campaign server.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    state: Arc<State>,
    rx: crossbeam::channel::Receiver<String>,
}

impl Server {
    /// Bind the listener, rescan the job store, and advertise the
    /// actual address in `<root>/server.addr`.
    pub fn bind(cfg: &ServeConfig) -> Result<Server, String> {
        std::fs::create_dir_all(cfg.root.join("jobs"))
            .map_err(|e| format!("cannot create {}: {e}", cfg.root.join("jobs").display()))?;
        let listener =
            TcpListener::bind(&cfg.addr).map_err(|e| format!("cannot bind {}: {e}", cfg.addr))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| format!("cannot read local addr: {e}"))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("cannot set nonblocking: {e}"))?;
        let addr_file = cfg.root.join("server.addr");
        std::fs::write(&addr_file, format!("{local_addr}\n"))
            .map_err(|e| format!("cannot write {}: {e}", addr_file.display()))?;

        let registry = jobs::scan_jobs(&cfg.root)?;
        let (tx, rx) = crossbeam::channel::bounded(cfg.queue_cap.max(1));
        Ok(Server {
            listener,
            local_addr,
            state: Arc::new(State {
                root: cfg.root.clone(),
                workers: cfg.workers,
                queue_cap: cfg.queue_cap.max(1),
                shutdown: AtomicBool::new(false),
                registry: Mutex::new(registry),
                tx,
                cache: ShardCache::new(cfg.cache_bytes),
                traces: TraceCache::new(cfg.cache_bytes),
                started: Instant::now(),
                http_requests: AtomicU64::new(0),
                jobs_submitted: AtomicU64::new(0),
                jobs_rejected: AtomicU64::new(0),
            }),
            rx,
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Serve until SIGTERM/`POST /shutdown`, then drain and return.
    /// Consumes the server; the runner thread is joined before this
    /// returns, so the job store is quiescent afterwards.
    pub fn run(self) -> Result<(), String> {
        let state = self.state;
        let runner = {
            let state = state.clone();
            let rx = self.rx;
            std::thread::spawn(move || runner_loop(&state, &rx))
        };

        // Re-enqueue unfinished jobs from before a restart, oldest
        // first. A blocking send from a side thread keeps startup
        // responsive even when there are more unfinished jobs than
        // queue slots — the runner drains as we feed.
        let backlog: Vec<String> = state
            .registry
            .lock()
            .iter()
            .filter(|j| j.state == JobState::Queued)
            .map(|j| j.id.clone())
            .collect();
        let refeed = {
            let tx = state.tx.clone();
            std::thread::spawn(move || {
                for id in backlog {
                    if tx.send(id).is_err() {
                        break;
                    }
                }
            })
        };

        while !state.shutdown.load(Ordering::SeqCst) && !SIGNALLED.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let state = state.clone();
                    std::thread::spawn(move || handle_connection(&state, stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) => return Err(format!("accept failed: {e}")),
            }
        }
        state.begin_shutdown();
        let _ = refeed.join();
        runner
            .join()
            .map_err(|_| "runner thread panicked".to_string())?;
        let _ = std::fs::remove_file(state.root.join("server.addr"));
        Ok(())
    }
}

/// The single job runner: FIFO over the bounded queue, one campaign at
/// a time, each campaign using the server's full worker count.
fn runner_loop(state: &State, rx: &crossbeam::channel::Receiver<String>) {
    use crossbeam::channel::RecvTimeoutError;
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match rx.recv_timeout(RUNNER_POLL) {
            Ok(id) => run_one(state, &id),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Execute one job end to end and persist its terminal marker (or lack
/// of one, which is what makes an interrupted job resumable).
fn run_one(state: &State, id: &str) {
    let (spec, cancel) = {
        let mut reg = state.registry.lock();
        let Some(job) = State::find(&mut reg, id) else {
            return;
        };
        if job.state != JobState::Queued {
            // Cancelled while queued (or a stale re-enqueue).
            return;
        }
        job.state = JobState::Running;
        (job.spec.clone(), job.cancel.clone())
    };

    let finish = |st: JobState, error: Option<String>| {
        let mut reg = state.registry.lock();
        if let Some(job) = State::find(&mut reg, id) {
            job.state = st;
            job.error = error;
        }
    };

    let resolved = match spec.resolve(state.workers) {
        Ok(r) => r,
        Err(e) => {
            let _ = jobs::write_marker(
                &state.root,
                id,
                "error.json",
                &serde::json::to_string(&ErrorDoc { error: e.clone() }),
            );
            finish(JobState::Failed, Some(e));
            return;
        }
    };
    let cdir = jobs::campaign_dir(&state.root, id);
    // Captured now because the spec moves into the campaign: simpoint
    // envelopes carry a provenance block stamped at aggregation time.
    let envelope_simpoint = resolved
        .simpoint
        .map(|sp| (sp, resolved.sample.interval_len));
    let campaign = Campaign::new(&cdir, resolved);
    let on_progress = |p: &ProgressSnapshot| {
        let mut reg = state.registry.lock();
        if let Some(job) = State::find(&mut reg, id) {
            job.progress = Some(ProgressLite {
                done: p.done,
                total: p.total,
                executed: p.executed,
                elapsed_ms: p.elapsed_ms,
                eta_ms: p.eta_ms,
            });
        }
    };
    let summary = campaign.run_with(&RunOptions {
        on_progress: Some(&on_progress),
        cancel: Some(&cancel),
        cache: Some(&state.cache),
        traces: Some(&state.traces),
    });

    match summary {
        Err(e) => {
            let _ = jobs::write_marker(
                &state.root,
                id,
                "error.json",
                &serde::json::to_string(&ErrorDoc { error: e.clone() }),
            );
            finish(JobState::Failed, Some(e));
        }
        Ok(summary) if !summary.interrupted => {
            match spear_campaign::write_aggregate_envelopes(
                &cdir,
                &summary.results,
                envelope_simpoint,
            ) {
                Ok(files) => {
                    let names: Vec<String> = files
                        .iter()
                        .filter_map(|p| p.file_name())
                        .map(|n| n.to_string_lossy().into_owned())
                        .collect();
                    let _ = jobs::write_marker(
                        &state.root,
                        id,
                        "done.json",
                        &serde::json::to_string(&DoneDoc {
                            total_cells: summary.total_cells,
                            aggregates: names,
                        }),
                    );
                    finish(JobState::Done, None);
                }
                Err(e) => {
                    let _ = jobs::write_marker(
                        &state.root,
                        id,
                        "error.json",
                        &serde::json::to_string(&ErrorDoc { error: e.clone() }),
                    );
                    finish(JobState::Failed, Some(e));
                }
            }
        }
        Ok(_) => {
            let user_cancelled = {
                let mut reg = state.registry.lock();
                State::find(&mut reg, id).is_some_and(|j| j.cancel_requested)
            };
            if user_cancelled {
                let _ = jobs::write_marker(&state.root, id, "cancelled.json", "{}\n");
                finish(JobState::Cancelled, None);
            } else {
                // Interrupted by shutdown or a max_cells budget: no
                // marker, so the job resumes on the next server start.
                finish(JobState::Queued, None);
                if !state.shutdown.load(Ordering::SeqCst) {
                    // A max_cells pause mid-session: go around again so
                    // the job keeps making progress in bounded bursts.
                    let _ = state.tx.try_send(id.to_string());
                }
            }
        }
    }
}

#[derive(Serialize)]
struct ErrorDoc {
    error: String,
}

#[derive(Serialize)]
struct DoneDoc {
    total_cells: u64,
    aggregates: Vec<String>,
}

use serde::Serialize;

/// Serve one connection: keep-alive loop, pipelining via the shared
/// `BufReader`, bounded parsing with HTTP error mapping.
fn handle_connection(state: &Arc<State>, stream: TcpStream) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        match http::read_request(&mut reader) {
            Ok(req) => {
                state.http_requests.fetch_add(1, Ordering::Relaxed);
                let keep_alive = !req.wants_close() && !state.shutdown.load(Ordering::SeqCst);
                let resp = route(state, &req);
                if resp.write_to(&mut writer, keep_alive).is_err() || !keep_alive {
                    return;
                }
            }
            Err(e) => {
                if let Some(resp) = e.response() {
                    let _ = resp.write_to(&mut writer, false);
                }
                return;
            }
        }
    }
}

/// Dispatch one request.
fn route(state: &Arc<State>, req: &Request) -> Response {
    if req.method != "GET" && req.method != "POST" {
        return Response::error(405, &format!("method {} not allowed", req.method));
    }
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::json(200, "{\"ok\":true}".into()),
        ("GET", "/metrics") => metrics(state),
        ("GET", "/jobs") => list_jobs(state),
        ("POST", "/jobs") => submit(state, req),
        ("POST", "/shutdown") => {
            state.begin_shutdown();
            Response::json(200, "{\"shutting_down\":true}".into())
        }
        (method, path) => {
            if let Some(rest) = path.strip_prefix("/jobs/") {
                if let Some(id) = rest.strip_suffix("/aggregates") {
                    return if method == "GET" {
                        aggregates(state, id)
                    } else {
                        Response::error(405, "aggregates is GET-only")
                    };
                }
                if let Some(id) = rest.strip_suffix("/cancel") {
                    return if method == "POST" {
                        cancel(state, id)
                    } else {
                        Response::error(405, "cancel is POST-only")
                    };
                }
                if !rest.contains('/') {
                    return if method == "GET" {
                        job_status(state, rest)
                    } else {
                        Response::error(405, "job status is GET-only")
                    };
                }
            }
            if matches!(path, "/healthz" | "/metrics" | "/jobs" | "/shutdown") {
                return Response::error(405, &format!("{path} does not allow {method}"));
            }
            Response::error(404, &format!("no such endpoint `{path}`"))
        }
    }
}

/// `POST /jobs`: validate, persist, enqueue — 429 when the queue is
/// full, which is the server's backpressure contract.
fn submit(state: &Arc<State>, req: &Request) -> Response {
    if state.shutdown.load(Ordering::SeqCst) {
        return Response::error(503, "server is shutting down");
    }
    let spec: JobSpec = match serde::json::from_str(&req.body_str()) {
        Ok(s) => s,
        Err(e) => return Response::error(400, &format!("invalid job spec: {e:?}")),
    };
    if let Err(e) = spec.resolve(state.workers) {
        return Response::error(400, &format!("invalid job spec: {e}"));
    }

    let id = {
        let mut reg = state.registry.lock();
        let id = jobs::next_id(&reg);
        let cdir = jobs::campaign_dir(&state.root, &id);
        if let Err(e) = std::fs::create_dir_all(&cdir) {
            return Response::error(503, &format!("cannot create job dir: {e}"));
        }
        let spec_path = jobs::job_dir(&state.root, &id).join("spec.json");
        if let Err(e) = std::fs::write(&spec_path, serde::json::to_string_pretty(&spec)) {
            return Response::error(503, &format!("cannot persist spec: {e}"));
        }
        reg.push(Job::new(id.clone(), spec, JobState::Queued));
        id
    };

    match state.tx.try_send(id.clone()) {
        Ok(()) => {
            state.jobs_submitted.fetch_add(1, Ordering::Relaxed);
            Response::json(201, format!("{{\"id\":\"{id}\",\"state\":\"queued\"}}"))
        }
        Err(crossbeam::channel::TrySendError::Full(_)) => {
            state.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            let mut reg = state.registry.lock();
            reg.retain(|j| j.id != id);
            let _ = std::fs::remove_dir_all(jobs::job_dir(&state.root, &id));
            Response::error(429, "job queue full; retry after a job finishes")
        }
        Err(crossbeam::channel::TrySendError::Disconnected(_)) => {
            Response::error(503, "server is shutting down")
        }
    }
}

/// `GET /jobs`: id + state for every known job, submission order.
fn list_jobs(state: &Arc<State>) -> Response {
    let reg = state.registry.lock();
    let jobs: Vec<Value> = reg
        .iter()
        .map(|j| {
            Value::Object(vec![
                ("id".into(), Value::Str(j.id.clone())),
                ("state".into(), Value::Str(j.state.as_str().into())),
            ])
        })
        .collect();
    let doc = Value::Object(vec![
        ("jobs".into(), Value::Array(jobs)),
        ("queue_depth".into(), Value::U64(state.tx.len() as u64)),
        ("queue_cap".into(), Value::U64(state.queue_cap as u64)),
    ]);
    Response::json(200, serde::json::to_string(&doc))
}

/// `GET /jobs/<id>`: state, spec, live progress (falling back to the
/// campaign's persisted heartbeat for jobs not currently running).
fn job_status(state: &Arc<State>, id: &str) -> Response {
    let (job_state, spec, error, live) = {
        let reg = state.registry.lock();
        let Some(job) = reg.iter().find(|j| j.id == id) else {
            return Response::error(404, &format!("no such job `{id}`"));
        };
        (job.state, job.spec.clone(), job.error.clone(), job.progress)
    };
    let progress = live.or_else(|| {
        let hb_path = jobs::campaign_dir(&state.root, id).join("progress.json");
        let text = std::fs::read_to_string(hb_path).ok()?;
        let hb: HeartbeatDoc = serde::json::from_str(&text).ok()?;
        Some(ProgressLite {
            done: hb.done,
            total: hb.total,
            executed: hb.executed,
            elapsed_ms: hb.elapsed_ms,
            eta_ms: hb.eta_ms,
        })
    });
    let progress_value = match progress {
        None => Value::Null,
        Some(p) => Value::Object(vec![
            ("done".into(), Value::U64(p.done)),
            ("total".into(), Value::U64(p.total)),
            ("executed".into(), Value::U64(p.executed)),
            ("elapsed_ms".into(), Value::U64(p.elapsed_ms)),
            (
                "eta_ms".into(),
                match p.eta_ms {
                    Some(v) => Value::U64(v),
                    None => Value::Null,
                },
            ),
        ]),
    };
    let doc = Value::Object(vec![
        ("id".into(), Value::Str(id.to_string())),
        ("state".into(), Value::Str(job_state.as_str().into())),
        ("spec".into(), serde::Serialize::to_value(&spec)),
        ("progress".into(), progress_value),
        (
            "error".into(),
            match error {
                Some(e) => Value::Str(e),
                None => Value::Null,
            },
        ),
    ]);
    Response::json(200, serde::json::to_string(&doc))
}

/// `GET /jobs/<id>/aggregates`: the job's aggregate envelopes, spliced
/// into the response as raw bytes so each envelope stays byte-identical
/// to what the CLI writes.
fn aggregates(state: &Arc<State>, id: &str) -> Response {
    let job_state = {
        let reg = state.registry.lock();
        let Some(job) = reg.iter().find(|j| j.id == id) else {
            return Response::error(404, &format!("no such job `{id}`"));
        };
        job.state
    };
    if job_state != JobState::Done {
        return Response::error(
            409,
            &format!("job `{id}` is {}, not done", job_state.as_str()),
        );
    }
    let agg_dir = jobs::campaign_dir(&state.root, id).join("aggregates");
    let mut names: Vec<String> = match std::fs::read_dir(&agg_dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".json"))
            .collect(),
        Err(e) => return Response::error(503, &format!("cannot read aggregates: {e}")),
    };
    names.sort();
    let mut body = format!("{{\"job\":\"{id}\",\"files\":{{");
    for (i, name) in names.iter().enumerate() {
        let raw = match std::fs::read_to_string(agg_dir.join(name)) {
            Ok(raw) => raw,
            Err(e) => return Response::error(503, &format!("cannot read {name}: {e}")),
        };
        if i > 0 {
            body.push(',');
        }
        body.push_str(&serde::json::to_string(&Value::Str(name.clone())));
        body.push(':');
        body.push_str(raw.trim_end());
    }
    body.push_str("}}");
    Response::json(200, body)
}

/// `POST /jobs/<id>/cancel`: cooperative — a queued job flips straight
/// to cancelled; a running one drains its in-flight cells first.
fn cancel(state: &Arc<State>, id: &str) -> Response {
    let mut reg = state.registry.lock();
    let Some(job) = State::find(&mut reg, id) else {
        return Response::error(404, &format!("no such job `{id}`"));
    };
    if job.state.is_terminal() {
        return Response::error(
            409,
            &format!("job `{id}` is already {}", job.state.as_str()),
        );
    }
    job.cancel_requested = true;
    job.cancel.store(true, Ordering::SeqCst);
    if job.state == JobState::Queued {
        job.state = JobState::Cancelled;
        let _ = jobs::write_marker(&state.root, id, "cancelled.json", "{}\n");
    }
    let current = job.state.as_str();
    Response::json(
        200,
        format!("{{\"id\":\"{id}\",\"state\":\"{current}\",\"cancel_requested\":true}}"),
    )
}

/// `GET /metrics`: Prometheus text exposition of server, queue, cache,
/// and running-job gauges.
fn metrics(state: &Arc<State>) -> Response {
    let mut out = String::new();
    let mut gauge = |name: &str, help: &str, value: String| {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
        ));
    };
    gauge(
        "spear_serve_uptime_ms",
        "Milliseconds since the server started.",
        (state.started.elapsed().as_millis() as u64).to_string(),
    );
    gauge(
        "spear_serve_http_requests_total",
        "HTTP requests handled.",
        state.http_requests.load(Ordering::Relaxed).to_string(),
    );
    gauge(
        "spear_serve_jobs_submitted_total",
        "Jobs accepted via POST /jobs.",
        state.jobs_submitted.load(Ordering::Relaxed).to_string(),
    );
    gauge(
        "spear_serve_jobs_rejected_total",
        "Jobs rejected with 429 (queue full).",
        state.jobs_rejected.load(Ordering::Relaxed).to_string(),
    );
    gauge(
        "spear_serve_queue_depth",
        "Jobs waiting in the bounded queue.",
        state.tx.len().to_string(),
    );
    gauge(
        "spear_serve_queue_cap",
        "Bounded queue capacity.",
        state.queue_cap.to_string(),
    );

    let (counts, running, running_bpreds) = {
        let reg = state.registry.lock();
        let mut counts = [0u64; 5];
        let mut running: Option<ProgressLite> = None;
        let mut running_bpreds: Vec<String> = Vec::new();
        for j in reg.iter() {
            let i = match j.state {
                JobState::Queued => 0,
                JobState::Running => 1,
                JobState::Done => 2,
                JobState::Failed => 3,
                JobState::Cancelled => 4,
            };
            counts[i] += 1;
            if j.state == JobState::Running {
                running = j.progress;
                running_bpreds = if j.spec.bpreds.is_empty() {
                    vec!["bimodal".to_string()]
                } else {
                    j.spec.bpreds.clone()
                };
            }
        }
        (counts, running, running_bpreds)
    };
    for (i, name) in ["queued", "running", "done", "failed", "cancelled"]
        .iter()
        .enumerate()
    {
        gauge(
            &format!("spear_serve_jobs_{name}"),
            &format!("Jobs currently in state `{name}`."),
            counts[i].to_string(),
        );
    }
    if let Some(p) = running {
        gauge(
            "spear_serve_running_cells_done",
            "Cells finished in the running job.",
            p.done.to_string(),
        );
        gauge(
            "spear_serve_running_cells_total",
            "Total cells in the running job.",
            p.total.to_string(),
        );
        gauge(
            "spear_serve_running_eta_ms",
            "Estimated remaining ms for the running job.",
            match p.eta_ms {
                Some(v) => v.to_string(),
                None => "NaN".to_string(),
            },
        );
    }
    let cs = state.cache.stats();
    gauge(
        "spear_serve_shard_cache_hits",
        "Shard-cache lookups served from memory.",
        cs.hits.to_string(),
    );
    gauge(
        "spear_serve_shard_cache_misses",
        "Shard-cache lookups that built the shard.",
        cs.misses.to_string(),
    );
    gauge(
        "spear_serve_shard_cache_evictions",
        "Shards evicted under the byte budget.",
        cs.evictions.to_string(),
    );
    gauge(
        "spear_serve_shard_cache_resident_bytes",
        "Estimated bytes of resident shard state.",
        cs.resident_bytes.to_string(),
    );
    gauge(
        "spear_serve_shard_cache_entries",
        "Shards currently resident.",
        cs.entries.to_string(),
    );
    gauge(
        "spear_serve_shard_cache_budget_bytes",
        "Configured shard-cache byte budget.",
        state.cache.budget_bytes().to_string(),
    );
    let ts = state.traces.stats();
    gauge(
        "spear_serve_trace_cache_hits",
        "Trace-cache lookups served from memory.",
        ts.hits.to_string(),
    );
    gauge(
        "spear_serve_trace_cache_misses",
        "Trace-cache lookups that recorded the trace.",
        ts.misses.to_string(),
    );
    gauge(
        "spear_serve_trace_cache_evictions",
        "Traces evicted under the byte budget.",
        ts.evictions.to_string(),
    );
    gauge(
        "spear_serve_trace_cache_resident_bytes",
        "Estimated bytes of resident recorded traces.",
        ts.resident_bytes.to_string(),
    );
    gauge(
        "spear_serve_trace_cache_entries",
        "Recorded traces currently resident.",
        ts.entries.to_string(),
    );

    if !running_bpreds.is_empty() {
        // Active predictor kinds and their table geometry, one labeled
        // series per (spec, dimension) of the running job's grid.
        out.push_str(concat!(
            "# HELP spear_serve_running_bpred_geometry ",
            "Direction-table geometry of the running job's predictors.\n",
            "# TYPE spear_serve_running_bpred_geometry gauge\n"
        ));
        for spec in &running_bpreds {
            // Specs were validated at submission; skip defensively anyway.
            let Ok(cfg) = spear_bpred::PredictorConfig::paper().with_spec(spec) else {
                continue;
            };
            let pred = spear_bpred::Predictor::new(cfg);
            let label = cfg.spec_label();
            for (dim, value) in pred.geometry() {
                out.push_str(&format!(
                    "spear_serve_running_bpred_geometry{{spec=\"{label}\",kind=\"{}\",dim=\"{dim}\"}} {value}\n",
                    pred.kind().name(),
                ));
            }
        }
    }
    Response::text(200, out)
}
