//! End-to-end tests of the campaign server over real sockets: the job
//! lifecycle, byte-identical aggregates, bounded-queue backpressure,
//! cancellation, and the HTTP layer's edge-case contract.

use spear_serve::client;
use spear_serve::{JobSpec, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spear-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Start a server on an ephemeral port; returns (addr, root, join handle).
fn start(tag: &str, queue_cap: usize) -> (String, PathBuf, std::thread::JoinHandle<()>) {
    let root = temp_root(tag);
    let cfg = ServeConfig {
        queue_cap,
        workers: 2,
        ..ServeConfig::new(&root)
    };
    let server = Server::bind(&cfg).expect("bind");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, root, handle)
}

fn shutdown(addr: &str, handle: std::thread::JoinHandle<()>) {
    let (status, _) = client::request(addr, "POST", "/shutdown", None).expect("shutdown");
    assert_eq!(status, 200);
    handle.join().expect("server thread");
}

/// A small but real sweep: 2 machines x 8 intervals of `pointer`.
fn small_spec() -> String {
    "{\"workloads\":[\"pointer\"],\"machines\":[\"baseline\",\"spear-128\"],\
     \"interval\":20000,\"stride\":2}"
        .to_string()
}

/// A deliberately larger sweep, used to keep the runner busy while the
/// backpressure tests poke the queue.
fn big_spec() -> String {
    "{\"workloads\":[\"pointer\",\"update\"],\
     \"machines\":[\"baseline\",\"spear-128\",\"spear-256\"],\
     \"interval\":20000,\"stride\":1}"
        .to_string()
}

fn submit(addr: &str, spec: &str) -> (u16, String) {
    client::request(addr, "POST", "/jobs", Some(spec)).expect("submit")
}

fn job_state(addr: &str, id: &str) -> String {
    let (status, body) =
        client::request(addr, "GET", &format!("/jobs/{id}"), None).expect("status");
    assert_eq!(status, 200, "{body}");
    field_str(&body, "state").expect("state field")
}

/// Pull a string field out of a JSON object body.
fn field_str(body: &str, name: &str) -> Option<String> {
    let v: serde::Value = serde::json::from_str(body).ok()?;
    match v.field(name) {
        Ok(serde::Value::Str(s)) => Some(s.clone()),
        _ => None,
    }
}

fn wait_for_state(addr: &str, id: &str, want: &str, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    loop {
        let got = job_state(addr, id);
        if got == want {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "job {id}: wanted state `{want}`, still `{got}` after {timeout:?}"
        );
        std::thread::sleep(Duration::from_millis(30));
    }
}

#[test]
fn job_lifecycle_and_byte_identical_aggregates() {
    let (addr, root, handle) = start("lifecycle", 8);

    let (status, body) = submit(&addr, &small_spec());
    assert_eq!(status, 201, "{body}");
    let id = field_str(&body, "id").unwrap();
    assert_eq!(id, "job-0001");

    wait_for_state(&addr, &id, "done", Duration::from_secs(120));

    // Status carries final progress.
    let (_, body) = client::request(&addr, "GET", &format!("/jobs/{id}"), None).unwrap();
    assert!(body.contains("\"done\":16"), "{body}");
    assert!(body.contains("\"total\":16"), "{body}");

    // The served aggregate files are byte-identical to what the same
    // grid produces through the campaign library directly (which is
    // also exactly what the CLI writes — same writer).
    let ref_dir = temp_root("lifecycle-ref");
    let spec: JobSpec = serde::json::from_str(&small_spec()).unwrap();
    let summary = spear_campaign::Campaign::new(&ref_dir, spec.resolve(2).unwrap())
        .run(None)
        .expect("reference campaign");
    spear_campaign::write_aggregate_envelopes(&ref_dir, &summary.results, None).unwrap();

    let srv_dir = root
        .join("jobs")
        .join(&id)
        .join("campaign")
        .join("aggregates");
    let mut names: Vec<String> = std::fs::read_dir(&srv_dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    assert_eq!(names.len(), 2, "{names:?}");
    for name in &names {
        let served = std::fs::read(srv_dir.join(name)).unwrap();
        let reference = std::fs::read(ref_dir.join("aggregates").join(name)).unwrap();
        assert_eq!(served, reference, "{name} differs from the CLI envelope");
    }

    // The aggregates endpoint splices those exact bytes.
    let (status, body) =
        client::request(&addr, "GET", &format!("/jobs/{id}/aggregates"), None).unwrap();
    assert_eq!(status, 200);
    for name in &names {
        let raw = std::fs::read_to_string(srv_dir.join(name)).unwrap();
        assert!(
            body.contains(raw.trim_end()),
            "endpoint body missing raw envelope {name}"
        );
    }

    // Aggregates of an unknown job: 404; of an unfinished job: tested
    // in the backpressure test below (409).
    let (status, _) = client::request(&addr, "GET", "/jobs/job-9999/aggregates", None).unwrap();
    assert_eq!(status, 404);

    shutdown(&addr, handle);
    let _ = std::fs::remove_dir_all(root);
    let _ = std::fs::remove_dir_all(ref_dir);
}

#[test]
fn bounded_queue_backpressure_and_cancel() {
    let (addr, root, handle) = start("backpressure", 1);

    // A: picked up by the runner almost immediately.
    let (status, body) = submit(&addr, &big_spec());
    assert_eq!(status, 201, "{body}");
    let a = field_str(&body, "id").unwrap();
    wait_for_state(&addr, &a, "running", Duration::from_secs(60));

    // B: sits in the queue (capacity 1).
    let (status, body) = submit(&addr, &small_spec());
    assert_eq!(status, 201, "{body}");
    let b = field_str(&body, "id").unwrap();

    // C: the queue is full — the backpressure contract is HTTP 429.
    let (status, body) = submit(&addr, &small_spec());
    assert_eq!(status, 429, "{body}");
    assert!(body.contains("queue full"), "{body}");

    // A rejected submission leaves no trace in the job list or store.
    let (_, list) = client::request(&addr, "GET", "/jobs", None).unwrap();
    assert!(!list.contains("job-0003"), "{list}");
    assert!(!root.join("jobs").join("job-0003").exists());

    // Aggregates of a queued job: 409.
    let (status, _) =
        client::request(&addr, "GET", &format!("/jobs/{b}/aggregates"), None).unwrap();
    assert_eq!(status, 409);

    // Cancel A: cooperative drain, then the queue unblocks and B runs.
    let (status, body) =
        client::request(&addr, "POST", &format!("/jobs/{a}/cancel"), None).unwrap();
    assert_eq!(status, 200, "{body}");
    wait_for_state(&addr, &a, "cancelled", Duration::from_secs(60));
    assert!(root.join("jobs").join(&a).join("cancelled.json").exists());
    // Cancelling a terminal job is a conflict.
    let (status, _) = client::request(&addr, "POST", &format!("/jobs/{a}/cancel"), None).unwrap();
    assert_eq!(status, 409);

    wait_for_state(&addr, &b, "done", Duration::from_secs(120));

    // The queue drained: a new submission is accepted again.
    let (status, body) = submit(&addr, &small_spec());
    assert_eq!(status, 201, "{body}");
    let d = field_str(&body, "id").unwrap();
    wait_for_state(&addr, &d, "done", Duration::from_secs(120));

    shutdown(&addr, handle);
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn invalid_specs_are_rejected_with_400() {
    let (addr, root, handle) = start("badspec", 4);
    for (spec, why) in [
        ("not json at all", "unparseable"),
        (
            "{\"workloads\":[],\"machines\":[\"baseline\"]}",
            "no workloads",
        ),
        (
            "{\"workloads\":[\"pointer\"],\"machines\":[\"cray-1\"]}",
            "unknown machine",
        ),
        (
            "{\"workloads\":[\"nope\"],\"machines\":[\"baseline\"]}",
            "unknown workload",
        ),
        (
            "{\"workloads\":[\"pointer\"],\"machines\":[\"baseline\"],\"stride\":0}",
            "zero stride",
        ),
    ] {
        let (status, body) = submit(&addr, spec);
        assert_eq!(status, 400, "{why}: {body}");
    }
    // Nothing leaked into the registry.
    let (_, list) = client::request(&addr, "GET", "/jobs", None).unwrap();
    assert!(list.contains("\"jobs\":[]"), "{list}");
    shutdown(&addr, handle);
    let _ = std::fs::remove_dir_all(root);
}

/// Write raw bytes to the server and read whatever comes back.
fn raw_exchange(addr: &str, bytes: &[u8]) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(bytes).expect("write");
    let mut out = Vec::new();
    let _ = s.read_to_end(&mut out);
    String::from_utf8_lossy(&out).into_owned()
}

#[test]
fn http_edge_cases_on_a_live_socket() {
    let (addr, root, handle) = start("httpedge", 4);

    // Unknown method.
    let resp = raw_exchange(&addr, b"BREW /jobs HTTP/1.1\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 405 "), "{resp}");

    // Unknown endpoint.
    let resp = raw_exchange(&addr, b"GET /teapot HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 404 "), "{resp}");

    // Wrong method on a known endpoint.
    let resp = raw_exchange(
        &addr,
        b"POST /metrics HTTP/1.1\r\nConnection: close\r\n\r\n",
    );
    assert!(resp.starts_with("HTTP/1.1 405 "), "{resp}");

    // Oversized header block.
    let huge = format!(
        "GET /healthz HTTP/1.1\r\nX-Padding: {}\r\n\r\n",
        "a".repeat(spear_serve::http::MAX_HEADER_BYTES)
    );
    let resp = raw_exchange(&addr, huge.as_bytes());
    assert!(resp.starts_with("HTTP/1.1 431 "), "{resp}");

    // Malformed Content-Length.
    let resp = raw_exchange(
        &addr,
        b"POST /jobs HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
    );
    assert!(resp.starts_with("HTTP/1.1 400 "), "{resp}");

    // Content-Length beyond the body cap.
    let resp = raw_exchange(
        &addr,
        format!(
            "POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            spear_serve::http::MAX_BODY_BYTES + 1
        )
        .as_bytes(),
    );
    assert!(resp.starts_with("HTTP/1.1 413 "), "{resp}");

    // Two pipelined requests on one connection get two responses, in
    // order, over the same socket.
    let resp = raw_exchange(
        &addr,
        b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n",
    );
    let responses = resp.matches("HTTP/1.1 200 OK").count();
    assert_eq!(responses, 2, "{resp}");
    assert!(resp.contains("{\"ok\":true}"), "{resp}");
    assert!(resp.contains("spear_serve_uptime_ms"), "{resp}");

    shutdown(&addr, handle);
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn metrics_track_jobs_and_cache() {
    let (addr, root, handle) = start("metrics", 4);

    let (status, body) = submit(&addr, &small_spec());
    assert_eq!(status, 201, "{body}");
    let id = field_str(&body, "id").unwrap();
    wait_for_state(&addr, &id, "done", Duration::from_secs(120));

    // Same workload again: the second job must hit the shard cache.
    let (status, body) = submit(&addr, &small_spec());
    assert_eq!(status, 201, "{body}");
    let id2 = field_str(&body, "id").unwrap();
    wait_for_state(&addr, &id2, "done", Duration::from_secs(120));

    let (status, metrics) = client::request(&addr, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    assert!(metrics.contains("spear_serve_jobs_done 2"), "{metrics}");
    assert!(
        metrics.contains("spear_serve_jobs_submitted_total 2"),
        "{metrics}"
    );
    assert!(
        metrics.contains("spear_serve_shard_cache_hits 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("spear_serve_shard_cache_misses 1"),
        "{metrics}"
    );

    // The cached shard also means both jobs aggregate identically.
    let agg = |id: &str| {
        let dir = root
            .join("jobs")
            .join(id)
            .join("campaign")
            .join("aggregates");
        let mut names: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        names
            .iter()
            .map(|n| std::fs::read(dir.join(n)).unwrap())
            .collect::<Vec<_>>()
    };
    assert_eq!(agg(&id), agg(&id2), "cache must not change results");

    shutdown(&addr, handle);
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn trace_backed_jobs_replay_through_the_trace_cache() {
    let (addr, root, handle) = start("tracejob", 4);

    // One workload, baseline machine, both front ends: the trace cells
    // replay the recorded committed path instead of executing `pointer`.
    let spec = "{\"workloads\":[\"pointer\"],\"machines\":[\"baseline\"],\
                \"frontends\":[\"program\",\"trace\"],\
                \"interval\":20000,\"stride\":2}";
    let (status, body) = submit(&addr, spec);
    assert_eq!(status, 201, "{body}");
    let id = field_str(&body, "id").unwrap();
    wait_for_state(&addr, &id, "done", Duration::from_secs(120));

    // Both front ends aggregated, under their own envelope names.
    let agg_dir = root
        .join("jobs")
        .join(&id)
        .join("campaign")
        .join("aggregates");
    let mut names: Vec<String> = std::fs::read_dir(&agg_dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    assert_eq!(
        names,
        vec![
            "pointer-superscalar-120.json".to_string(),
            "pointer-superscalar-trace-120.json".to_string(),
        ],
        "{names:?}"
    );
    // On the baseline machine replay is timing-equivalent to execution:
    // the two envelopes differ only by the frontend label.
    let program = std::fs::read_to_string(agg_dir.join(&names[0])).unwrap();
    let trace = std::fs::read_to_string(agg_dir.join(&names[1])).unwrap();
    assert_eq!(
        trace.replace(",\n  \"frontend\": \"trace\"", ""),
        program,
        "baseline trace replay must reproduce the program-driven envelope"
    );

    // A second identical job re-records nothing: the trace cache serves
    // the recorded path, and the gauges say so.
    let (status, body) = submit(&addr, spec);
    assert_eq!(status, 201, "{body}");
    let id2 = field_str(&body, "id").unwrap();
    wait_for_state(&addr, &id2, "done", Duration::from_secs(120));

    let (status, metrics) = client::request(&addr, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    assert!(
        metrics.contains("spear_serve_trace_cache_misses 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("spear_serve_trace_cache_entries 1"),
        "{metrics}"
    );

    // A bogus front end is a 400 at submission, not a failed job.
    let (status, body) = submit(
        &addr,
        "{\"workloads\":[\"pointer\"],\"machines\":[\"baseline\"],\
         \"frontends\":[\"oracle\"]}",
    );
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("unknown front end"), "{body}");

    shutdown(&addr, handle);
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn restart_rescan_resumes_unfinished_jobs() {
    let root = temp_root("rescan");
    let cfg = ServeConfig {
        workers: 2,
        ..ServeConfig::new(&root)
    };

    // First server: start a large job, shut down mid-run (graceful
    // drain leaves it unfinished but resumable, like a crash would).
    let server = Server::bind(&cfg).expect("bind");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("run"));
    let (status, body) = submit(&addr, &big_spec());
    assert_eq!(status, 201, "{body}");
    let id = field_str(&body, "id").unwrap();
    // Wait for real progress so the resume has something to skip.
    let cells = root
        .join("jobs")
        .join(&id)
        .join("campaign")
        .join("cells.jsonl");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let n = std::fs::read_to_string(&cells)
            .map(|t| t.lines().count())
            .unwrap_or(0);
        if n >= 3 {
            break;
        }
        assert!(Instant::now() < deadline, "no cells executed");
        std::thread::sleep(Duration::from_millis(20));
    }
    shutdown(&addr, handle);
    let executed_before = std::fs::read_to_string(&cells).unwrap().lines().count();
    assert!(executed_before >= 3);
    assert!(!root.join("jobs").join(&id).join("done.json").exists());

    // Second server on the same root: the job is rescanned, re-queued,
    // resumed, and finished — with the earlier cells skipped, not re-run.
    let server = Server::bind(&cfg).expect("rebind");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("rerun"));
    wait_for_state(&addr, &id, "done", Duration::from_secs(180));
    let all_lines = std::fs::read_to_string(&cells).unwrap().lines().count();
    let (_, status_body) = client::request(&addr, "GET", &format!("/jobs/{id}"), None).unwrap();
    assert!(
        status_body.contains(&format!("\"total\":{all_lines}")),
        "{status_body}"
    );

    shutdown(&addr, handle);
    let _ = std::fs::remove_dir_all(root);
}
