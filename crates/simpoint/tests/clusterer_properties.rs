//! Property tests for the SimPoint clusterer over randomly generated
//! BBV matrices: determinism for a fixed seed, exactly-one-phase
//! assignment, weights summing to 1.0, and invariance of the clustering
//! under interval reordering.

use proptest::prelude::*;
use spear_simpoint::{cluster, project, Clustering, SimpointConfig};

/// A random BBV matrix: 1..24 intervals, each a sparse id-sorted vector
/// drawn from a small universe of block ids so intervals genuinely
/// share blocks (as real program phases do).
fn arb_matrix() -> impl Strategy<Value = Vec<Vec<(u64, u64)>>> {
    proptest::collection::vec(
        proptest::collection::vec((0u64..32, 1u64..1000), 1..8),
        1..24,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .map(|mut row| {
                // Collapse duplicate ids and sort, as the collector would.
                row.sort_by_key(|&(id, _)| id);
                let mut out: Vec<(u64, u64)> = Vec::new();
                for (id, c) in row {
                    match out.last_mut() {
                        Some((last, n)) if *last == id => *n += c,
                        _ => out.push((id, c)),
                    }
                }
                out
            })
            .collect()
    })
}

fn arb_config() -> impl Strategy<Value = SimpointConfig> {
    (0usize..5, 1u64..4).prop_map(|(k, seed)| SimpointConfig {
        k,
        max_k: 6,
        dims: 8,
        seed,
    })
}

/// A deterministic permutation of `0..n` derived from `salt`.
fn permutation(n: usize, salt: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    let mut state = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    for i in (1..n).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        idx.swap(i, (state as usize) % (i + 1));
    }
    idx
}

fn check_well_formed(c: &Clustering, n: usize) {
    assert!(c.k >= 1);
    assert_eq!(c.assignments.len(), n, "every interval gets a phase");
    assert!(
        c.assignments.iter().all(|&a| a < c.k),
        "every assignment names a live phase"
    );
    assert_eq!(c.representatives.len(), c.k);
    assert_eq!(c.counts.len(), c.k);
    assert_eq!(c.weights.len(), c.k);
    assert_eq!(
        c.counts.iter().sum::<u64>(),
        n as u64,
        "phase counts partition the intervals"
    );
    assert!(c.counts.iter().all(|&cnt| cnt > 0), "no empty phases");
    for (phase, &rep) in c.representatives.iter().enumerate() {
        assert!(rep < n);
        assert_eq!(
            c.assignments[rep], phase,
            "a phase's representative belongs to it"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn clustering_is_deterministic_and_well_formed(
        m in arb_matrix(),
        cfg in arb_config(),
    ) {
        let a = cluster(&m, &cfg);
        check_well_formed(&a, m.len());
        let b = cluster(&m, &cfg);
        prop_assert_eq!(a, b, "same matrix + seed => same clustering");
    }

    #[test]
    fn weights_sum_to_one(m in arb_matrix(), cfg in arb_config()) {
        let c = cluster(&m, &cfg);
        let sum: f64 = c.weights.iter().sum();
        prop_assert!(
            (sum - 1.0).abs() < 1e-9,
            "weights sum to {} != 1.0", sum
        );
        for (w, &cnt) in c.weights.iter().zip(&c.counts) {
            prop_assert!((w - cnt as f64 / m.len() as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn clustering_is_invariant_under_interval_reordering(
        m in arb_matrix(),
        cfg in arb_config(),
        salt in 1u64..1000,
    ) {
        let base = cluster(&m, &cfg);
        let perm = permutation(m.len(), salt);
        let shuffled: Vec<Vec<(u64, u64)>> =
            perm.iter().map(|&i| m[i].clone()).collect();
        let re = cluster(&shuffled, &cfg);

        prop_assert_eq!(re.k, base.k, "same number of phases");
        prop_assert_eq!(&re.counts, &base.counts, "same phase sizes");
        prop_assert_eq!(&re.weights, &base.weights, "same weights");
        // Phase labels are canonical, so shuffled interval j (= original
        // interval perm[j]) must land in the same-named phase.
        for (j, &orig) in perm.iter().enumerate() {
            prop_assert_eq!(
                re.assignments[j], base.assignments[orig],
                "interval {}'s phase must survive reordering", orig
            );
        }
        // Representatives may differ in *index* (intervals with the same
        // frequency profile are interchangeable), but each phase's
        // representative must be the same point in clustering space —
        // i.e. bit-identical after normalization + projection.
        for phase in 0..re.k {
            prop_assert_eq!(
                project(&shuffled[re.representatives[phase]], cfg.dims, cfg.seed),
                project(&m[base.representatives[phase]], cfg.dims, cfg.seed),
                "phase {}'s representative must survive reordering",
                phase
            );
        }
    }
}
