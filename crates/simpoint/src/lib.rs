//! # spear-simpoint — SimPoint-style phase clustering
//!
//! Groups the per-interval basic-block vectors (BBVs) of a program run
//! into *phases* and picks one representative interval per phase, so a
//! campaign can simulate a handful of intervals and reconstitute
//! whole-program statistics as the phase-count-weighted blend — the
//! Sherwood et al. SimPoint recipe:
//!
//! 1. each interval's sparse BBV is normalized to a frequency vector and
//!    reduced to a small dense vector by a seeded random projection;
//! 2. the projected vectors are clustered with k-means (k fixed by the
//!    caller, or chosen by the BIC over `1..=max_k`);
//! 3. each cluster's representative is the interval closest to its
//!    centroid, weighted by the cluster's interval count.
//!
//! Everything is deterministic for a fixed seed, and — unusually for
//! k-means — *invariant under reordering of the input intervals*: the
//! projection is a pure function of the block id (not of matrix
//! position), initialization is farthest-first from the lexicographically
//! smallest projected vector, centroid sums are accumulated in a
//! content-sorted canonical order, and all ties break on vector content.
//! Two runs over the same interval multiset therefore produce the same
//! phases, weights, and representative vectors, no matter how the
//! intervals were laid out. This is what makes SimPoint parameters safe
//! to put in campaign manifests and shard-cache keys.

/// Clustering parameters. `seed` feeds the random projection; `k == 0`
/// selects k automatically by the BIC over `1..=max_k`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimpointConfig {
    /// Number of phases; 0 = choose by BIC.
    pub k: usize,
    /// Largest k considered when `k == 0`.
    pub max_k: usize,
    /// Random-projection target dimensionality.
    pub dims: usize,
    /// Projection seed.
    pub seed: u64,
}

impl Default for SimpointConfig {
    fn default() -> Self {
        SimpointConfig {
            k: 0,
            max_k: 8,
            dims: 16,
            seed: 42,
        }
    }
}

/// The result of clustering `n` intervals into `k` phases.
#[derive(Clone, Debug, PartialEq)]
pub struct Clustering {
    /// Number of (non-empty) phases.
    pub k: usize,
    /// Phase of each interval, `assignments[i] < k`. Phase labels are
    /// canonical (ordered by centroid content), so they are stable under
    /// interval reordering.
    pub assignments: Vec<usize>,
    /// Representative interval index per phase (the interval closest to
    /// the phase centroid).
    pub representatives: Vec<usize>,
    /// Intervals per phase; sums to `n`.
    pub counts: Vec<u64>,
    /// `counts` normalized to sum to 1.0.
    pub weights: Vec<f64>,
}

/// Cluster one run's BBVs. Each BBV is a sparse, id-sorted
/// `(block id, instruction count)` vector as produced by
/// `spear_exec::BbvCollector`. Panics on an empty input.
pub fn cluster(bbvs: &[Vec<(u64, u64)>], cfg: &SimpointConfig) -> Clustering {
    assert!(!bbvs.is_empty(), "cannot cluster zero intervals");
    let dims = cfg.dims.max(1);
    let points: Vec<Vec<f64>> = bbvs.iter().map(|b| project(b, dims, cfg.seed)).collect();
    let n = points.len();
    let k = if cfg.k > 0 {
        cfg.k.min(n)
    } else {
        choose_k_by_bic(&points, cfg.max_k.max(1).min(n))
    };
    let (assignments, centroids) = kmeans(&points, k);
    finalize(&points, assignments, centroids)
}

/// Project one sparse BBV onto `dims` pseudo-random axes. The BBV is
/// first normalized by its instruction total, so intervals of unequal
/// length (the trailing partial interval) compare by *profile*, not by
/// volume; each block id contributes along a direction derived from a
/// hash of `(seed, id, axis)` — a pure function of the id, independent
/// of which other blocks exist in the matrix.
pub fn project(bbv: &[(u64, u64)], dims: usize, seed: u64) -> Vec<f64> {
    let total: u64 = bbv.iter().map(|&(_, c)| c).sum();
    let mut v = vec![0.0f64; dims];
    if total == 0 {
        return v;
    }
    for &(id, c) in bbv {
        let f = c as f64 / total as f64;
        for (d, slot) in v.iter_mut().enumerate() {
            *slot += f * unit_hash(seed, id, d as u64);
        }
    }
    v
}

/// Deterministic hash of `(seed, id, axis)` mapped to `[-1, 1)`.
fn unit_hash(seed: u64, id: u64, axis: u64) -> f64 {
    let h = splitmix64(
        splitmix64(seed ^ 0x9e37_79b9_7f4a_7c15)
            .wrapping_add(splitmix64(id).rotate_left(17))
            .wrapping_add(axis.wrapping_mul(0xbf58_476d_1ce4_e5b9)),
    );
    ((h >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Lexicographic comparison of two vectors by `f64::total_cmp`.
fn lex_cmp(a: &[f64], b: &[f64]) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b) {
        match x.total_cmp(y) {
            std::cmp::Ordering::Equal => continue,
            other => return other,
        }
    }
    std::cmp::Ordering::Equal
}

/// Indices of `points` in canonical (content-lexicographic) order. All
/// order-sensitive arithmetic walks points in this order, which is what
/// makes the clustering invariant under input reordering.
fn canonical_order(points: &[Vec<f64>]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| lex_cmp(&points[a], &points[b]));
    order
}

/// Deterministic, order-invariant k-means. Returns per-point cluster
/// indices and the final centroids (some possibly empty).
fn kmeans(points: &[Vec<f64>], k: usize) -> (Vec<usize>, Vec<Vec<f64>>) {
    let n = points.len();
    let k = k.min(n).max(1);
    let order = canonical_order(points);

    // Farthest-first init, seeded from the lexicographically smallest
    // point. Ties on distance break toward the lexicographically
    // smallest candidate (the canonical walk visits it first).
    let mut centroids: Vec<Vec<f64>> = vec![points[order[0]].clone()];
    let mut nearest: Vec<f64> = points.iter().map(|p| dist2(p, &centroids[0])).collect();
    while centroids.len() < k {
        let mut best: Option<(usize, f64)> = None;
        for &i in &order {
            if best.is_none_or(|(_, d)| nearest[i] > d) {
                best = Some((i, nearest[i]));
            }
        }
        let (far, d) = best.expect("nonempty points");
        if d == 0.0 {
            break; // fewer distinct points than k
        }
        let c = points[far].clone();
        for (i, p) in points.iter().enumerate() {
            nearest[i] = nearest[i].min(dist2(p, &c));
        }
        centroids.push(c);
    }

    let mut assignments = vec![0usize; n];
    for _ in 0..100 {
        // Assign: nearest centroid, ties to the lowest centroid index
        // (centroid order is itself content-determined).
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (j, c) in centroids.iter().enumerate() {
                let d = dist2(p, c);
                if d < best_d {
                    best = j;
                    best_d = d;
                }
            }
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        // Update: accumulate in canonical order so floating-point sums
        // are bit-identical regardless of input order. Empty clusters
        // keep their previous centroid.
        let dims = centroids[0].len();
        let mut sums = vec![vec![0.0f64; dims]; centroids.len()];
        let mut counts = vec![0u64; centroids.len()];
        for &i in &order {
            let c = assignments[i];
            counts[c] += 1;
            for (s, x) in sums[c].iter_mut().zip(&points[i]) {
                *s += x;
            }
        }
        for (j, c) in centroids.iter_mut().enumerate() {
            if counts[j] > 0 {
                for (slot, s) in c.iter_mut().zip(&sums[j]) {
                    *slot = s / counts[j] as f64;
                }
            }
        }
    }
    (assignments, centroids)
}

/// Drop empty clusters, relabel phases canonically (by centroid
/// content), and pick representatives and weights.
fn finalize(points: &[Vec<f64>], assignments: Vec<usize>, centroids: Vec<Vec<f64>>) -> Clustering {
    let n = points.len();
    let mut counts_raw = vec![0u64; centroids.len()];
    for &a in &assignments {
        counts_raw[a] += 1;
    }
    // Canonical phase order: non-empty clusters sorted by centroid.
    let mut live: Vec<usize> = (0..centroids.len())
        .filter(|&j| counts_raw[j] > 0)
        .collect();
    live.sort_by(|&a, &b| lex_cmp(&centroids[a], &centroids[b]));
    let mut relabel = vec![usize::MAX; centroids.len()];
    for (new, &old) in live.iter().enumerate() {
        relabel[old] = new;
    }
    let k = live.len();
    let assignments: Vec<usize> = assignments.into_iter().map(|a| relabel[a]).collect();
    let counts: Vec<u64> = live.iter().map(|&j| counts_raw[j]).collect();
    let order = canonical_order(points);
    let mut representatives = vec![usize::MAX; k];
    let mut best_d = vec![f64::INFINITY; k];
    // Walk canonically so distance ties resolve to the lexicographically
    // smallest member; the `<` keeps the first (smallest) of exact ties.
    for &i in &order {
        let phase = assignments[i];
        let d = dist2(&points[i], &centroids[live[phase]]);
        if d < best_d[phase] {
            best_d[phase] = d;
            representatives[phase] = i;
        }
    }
    let weights: Vec<f64> = counts.iter().map(|&c| c as f64 / n as f64).collect();
    Clustering {
        k,
        assignments,
        representatives,
        counts,
        weights,
    }
}

/// Pick k by the Bayesian information criterion (the x-means/SimPoint
/// spherical-Gaussian form), choosing the smallest k whose
/// range-normalized score reaches 90% of the best — SimPoint's standard
/// "good enough and small" rule.
fn choose_k_by_bic(points: &[Vec<f64>], max_k: usize) -> usize {
    let mut scores: Vec<(usize, f64)> = Vec::new();
    for k in 1..=max_k {
        let (assignments, centroids) = kmeans(points, k);
        scores.push((k, bic(points, &assignments, &centroids)));
    }
    let lo = scores.iter().map(|&(_, s)| s).fold(f64::INFINITY, f64::min);
    let hi = scores
        .iter()
        .map(|&(_, s)| s)
        .fold(f64::NEG_INFINITY, f64::max);
    if !(hi - lo).is_finite() || hi - lo <= 0.0 {
        return 1;
    }
    for &(k, s) in &scores {
        if (s - lo) / (hi - lo) >= 0.9 {
            return k;
        }
    }
    scores.last().map(|&(k, _)| k).unwrap_or(1)
}

fn bic(points: &[Vec<f64>], assignments: &[usize], centroids: &[Vec<f64>]) -> f64 {
    let n = points.len() as f64;
    let d = centroids.first().map_or(1, Vec::len) as f64;
    let mut counts = vec![0u64; centroids.len()];
    let mut rss = 0.0;
    for (p, &a) in points.iter().zip(assignments) {
        counts[a] += 1;
        rss += dist2(p, &centroids[a]);
    }
    let k = counts.iter().filter(|&&c| c > 0).count() as f64;
    let sigma2 = (rss / (n - k).max(1.0)).max(1e-12);
    let mut ll = -(n * d / 2.0) * (2.0 * std::f64::consts::PI * sigma2).ln() - (n - k) / 2.0;
    for &c in &counts {
        if c > 0 {
            ll += c as f64 * (c as f64 / n).ln();
        }
    }
    let params = k * (d + 1.0);
    ll - (params / 2.0) * n.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two obviously distinct phases: intervals dominated by block A vs
    /// intervals dominated by block B.
    fn two_phase_matrix() -> Vec<Vec<(u64, u64)>> {
        let a = vec![(0u64, 90u64), (8, 10)];
        let b = vec![(512u64, 95u64), (520, 5)];
        vec![
            a.clone(),
            a.clone(),
            b.clone(),
            a.clone(),
            b.clone(),
            b.clone(),
            b,
        ]
    }

    #[test]
    fn fixed_k_splits_the_obvious_phases() {
        let c = cluster(
            &two_phase_matrix(),
            &SimpointConfig {
                k: 2,
                ..Default::default()
            },
        );
        assert_eq!(c.k, 2);
        assert_eq!(c.assignments.len(), 7);
        // Intervals 0,1,3 together; 2,4,5,6 together.
        assert_eq!(c.assignments[0], c.assignments[1]);
        assert_eq!(c.assignments[0], c.assignments[3]);
        assert_eq!(c.assignments[2], c.assignments[4]);
        assert_ne!(c.assignments[0], c.assignments[2]);
        let mut counts = c.counts.clone();
        counts.sort_unstable();
        assert_eq!(counts, vec![3, 4]);
        // The representative of each phase is a member of it.
        for (phase, &rep) in c.representatives.iter().enumerate() {
            assert_eq!(c.assignments[rep], phase);
        }
    }

    #[test]
    fn auto_k_finds_the_two_phases() {
        let c = cluster(&two_phase_matrix(), &SimpointConfig::default());
        assert_eq!(c.k, 2, "BIC should resolve two well-separated phases");
    }

    #[test]
    fn k_larger_than_distinct_points_collapses() {
        let m = vec![vec![(0u64, 10u64)]; 5];
        let c = cluster(
            &m,
            &SimpointConfig {
                k: 3,
                ..Default::default()
            },
        );
        assert_eq!(c.k, 1, "identical intervals form one phase");
        assert_eq!(c.counts, vec![5]);
        assert!((c.weights[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unequal_interval_lengths_compare_by_profile() {
        // A short tail interval with the same block mix as a full one
        // lands in the same phase: vectors are frequency-normalized.
        let full = vec![(0u64, 900u64), (8, 100)];
        let tail = vec![(0u64, 9u64), (8, 1)];
        let other = vec![(512u64, 1000u64)];
        let c = cluster(
            &[full, other, tail],
            &SimpointConfig {
                k: 2,
                ..Default::default()
            },
        );
        assert_eq!(c.assignments[0], c.assignments[2]);
        assert_ne!(c.assignments[0], c.assignments[1]);
    }
}
