//! `#[derive(Serialize, Deserialize)]` for the offline serde stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` (no syn/quote in the
//! offline build). Supports exactly the shapes this workspace uses:
//!
//! * structs with named fields → `Value::Object` keyed by field name;
//! * newtype structs (`struct Reg(u8)`) → the inner value, transparent;
//! * tuple structs with ≥2 fields → `Value::Array`;
//! * enums with unit variants only → `Value::Str(variant_name)`.
//!
//! Generics, data-carrying enum variants, and serde attributes are out of
//! scope and rejected with a compile-time panic naming the offender.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render(&item, true).parse().expect("generated impl parses")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render(&item, false).parse().expect("generated impl parses")
}

enum Shape {
    /// Named-field struct: field identifiers in declaration order.
    Struct(Vec<String>),
    /// Tuple struct: number of fields.
    Tuple(usize),
    /// Enum of unit variants: variant identifiers.
    Enum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip attributes and visibility to the `struct` / `enum` keyword.
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) and friends
                    }
                }
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                break id.to_string();
            }
            Some(other) => panic!("serde derive: unexpected token `{other}`"),
            None => panic!("serde derive: no struct or enum found"),
        }
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected type name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde derive: generic type `{name}` is not supported");
        }
    }
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) => break g,
            Some(_) => i += 1,
            None => panic!("serde derive: `{name}` has no body"),
        }
    };
    let shape = match (kind.as_str(), body.delimiter()) {
        ("struct", Delimiter::Brace) => Shape::Struct(parse_named_fields(body.stream())),
        ("struct", Delimiter::Parenthesis) => Shape::Tuple(count_tuple_fields(body.stream())),
        ("enum", Delimiter::Brace) => Shape::Enum(parse_unit_variants(body.stream(), &name)),
        _ => panic!("serde derive: unsupported shape for `{name}`"),
    };
    Item { name, shape }
}

/// Field names of a named-field struct body, skipping attributes,
/// visibility, and type tokens (angle-bracket aware so `Map<K, V>` commas
/// do not split fields).
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Attributes.
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '#' {
                i += 2;
            } else {
                break;
            }
        }
        // Visibility.
        if let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let Some(TokenTree::Ident(fname)) = tokens.get(i) else {
            break;
        };
        fields.push(fname.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde derive: expected `:` after field, got {other:?}"),
        }
        // Skip the type up to the next angle-depth-zero comma.
        let mut depth = 0i32;
        while let Some(t) = tokens.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Number of fields in a tuple-struct body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0i32;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => count += 1,
            _ => {}
        }
    }
    // A trailing comma does not add a field.
    if let Some(TokenTree::Punct(p)) = tokens.last() {
        if p.as_char() == ',' {
            count -= 1;
        }
    }
    count
}

/// Variant names of a unit-variant enum body.
fn parse_unit_variants(body: TokenStream, enum_name: &str) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '#' {
                i += 2;
            } else {
                break;
            }
        }
        let Some(TokenTree::Ident(vname)) = tokens.get(i) else {
            break;
        };
        variants.push(vname.to_string());
        i += 1;
        match tokens.get(i) {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Group(_)) => panic!(
                "serde derive: enum `{enum_name}` has a data-carrying variant \
                 `{last}`, which is not supported",
                last = variants.last().expect("just pushed")
            ),
            Some(other) => panic!("serde derive: unexpected token `{other}` in enum body"),
        }
    }
    variants
}

fn render(item: &Item, serialize: bool) -> String {
    let name = &item.name;
    match (&item.shape, serialize) {
        (Shape::Struct(fields), true) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "fields.push((\"{f}\".to_string(), \
                         ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                             ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(fields)\n\
                     }}\n\
                 }}"
            )
        }
        (Shape::Struct(fields), false) => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.field(\"{f}\")?)?,\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        (Shape::Tuple(1), true) => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        (Shape::Tuple(1), false) => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> \
                     ::std::result::Result<Self, ::serde::Error> {{\n\
                     ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))\n\
                 }}\n\
             }}"
        ),
        (Shape::Tuple(n), true) => {
            let items: String = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Array(vec![{items}])\n\
                     }}\n\
                 }}"
            )
        }
        (Shape::Tuple(n), false) => {
            let items: String = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Array(items) if items.len() == {n} => \
                                 ::std::result::Result::Ok({name}({items})),\n\
                             _ => ::std::result::Result::Err(::serde::Error::new(\
                                 \"expected {n}-element array for {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
        (Shape::Enum(variants), true) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
        (Shape::Enum(variants), false) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {arms}\
                                 other => ::std::result::Result::Err(::serde::Error::new(\
                                     format!(\"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             _ => ::std::result::Result::Err(::serde::Error::new(\
                                 \"expected string for enum {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
