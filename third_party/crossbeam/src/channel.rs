//! The bounded multi-producer/multi-consumer channel subset of
//! `crossbeam-channel`, over `std::sync::{Mutex, Condvar}`.
//!
//! Semantics match crossbeam where the workspace relies on them:
//!
//! - [`bounded`] creates a channel holding at most `cap` queued messages;
//! - [`Sender::try_send`] never blocks: a full queue yields
//!   [`TrySendError::Full`] (the backpressure signal the campaign server
//!   turns into HTTP 429);
//! - [`Receiver::recv`] blocks until a message or disconnection (every
//!   `Sender` dropped), [`Receiver::recv_timeout`] bounds the wait;
//! - dropping all receivers disconnects the senders and vice versa.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// `try_send` failure: the queue is full or every receiver is gone.
/// The message is handed back either way.
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The queue holds `cap` messages.
    Full(T),
    /// Every [`Receiver`] has been dropped.
    Disconnected(T),
}

/// `send` failure: every [`Receiver`] has been dropped.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// `recv` failure: the queue is empty and every [`Sender`] is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

/// `recv_timeout` failure.
#[derive(Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Nothing arrived within the timeout.
    Timeout,
    /// The queue is empty and every [`Sender`] is gone.
    Disconnected,
}

/// `try_recv` failure.
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// The queue is currently empty.
    Empty,
    /// The queue is empty and every [`Sender`] is gone.
    Disconnected,
}

struct Inner<T> {
    queue: VecDeque<T>,
    cap: usize,
    senders: usize,
    receivers: usize,
}

struct Chan<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// The sending half; cloneable across threads.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// The receiving half; cloneable across threads.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// A channel holding at most `cap` queued messages (`cap >= 1`).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap >= 1, "bounded channel capacity must be at least 1");
    let chan = Arc::new(Chan {
        inner: Mutex::new(Inner {
            queue: VecDeque::with_capacity(cap),
            cap,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { chan: chan.clone() }, Receiver { chan })
}

impl<T> Sender<T> {
    /// Queue `t` without blocking, or hand it back if the queue is full
    /// or disconnected.
    pub fn try_send(&self, t: T) -> Result<(), TrySendError<T>> {
        let mut g = self.chan.inner.lock().expect("channel poisoned");
        if g.receivers == 0 {
            return Err(TrySendError::Disconnected(t));
        }
        if g.queue.len() >= g.cap {
            return Err(TrySendError::Full(t));
        }
        g.queue.push_back(t);
        drop(g);
        self.chan.not_empty.notify_one();
        Ok(())
    }

    /// Queue `t`, blocking while the queue is full.
    pub fn send(&self, t: T) -> Result<(), SendError<T>> {
        let mut g = self.chan.inner.lock().expect("channel poisoned");
        loop {
            if g.receivers == 0 {
                return Err(SendError(t));
            }
            if g.queue.len() < g.cap {
                g.queue.push_back(t);
                drop(g);
                self.chan.not_empty.notify_one();
                return Ok(());
            }
            g = self.chan.not_full.wait(g).expect("channel poisoned");
        }
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.chan
            .inner
            .lock()
            .expect("channel poisoned")
            .queue
            .len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Take the oldest message, blocking until one arrives or every
    /// sender disconnects.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut g = self.chan.inner.lock().expect("channel poisoned");
        loop {
            if let Some(t) = g.queue.pop_front() {
                drop(g);
                self.chan.not_full.notify_one();
                return Ok(t);
            }
            if g.senders == 0 {
                return Err(RecvError);
            }
            g = self.chan.not_empty.wait(g).expect("channel poisoned");
        }
    }

    /// [`Receiver::recv`] bounded by `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut g = self.chan.inner.lock().expect("channel poisoned");
        loop {
            if let Some(t) = g.queue.pop_front() {
                drop(g);
                self.chan.not_full.notify_one();
                return Ok(t);
            }
            if g.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, res) = self
                .chan
                .not_empty
                .wait_timeout(g, deadline - now)
                .expect("channel poisoned");
            g = guard;
            if res.timed_out() && g.queue.is_empty() {
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Take the oldest message without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut g = self.chan.inner.lock().expect("channel poisoned");
        if let Some(t) = g.queue.pop_front() {
            drop(g);
            self.chan.not_full.notify_one();
            return Ok(t);
        }
        if g.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.chan
            .inner
            .lock()
            .expect("channel poisoned")
            .queue
            .len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.inner.lock().expect("channel poisoned").senders += 1;
        Sender {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.inner.lock().expect("channel poisoned").receivers += 1;
        Receiver {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut g = self.chan.inner.lock().expect("channel poisoned");
        g.senders -= 1;
        if g.senders == 0 {
            drop(g);
            // Wake blocked receivers so they observe the disconnect.
            self.chan.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut g = self.chan.inner.lock().expect("channel poisoned");
        g.receivers -= 1;
        if g.receivers == 0 {
            drop(g);
            self.chan.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn try_send_signals_full_and_drains_in_fifo_order() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        assert!(rx.is_empty());
    }

    #[test]
    fn recv_blocks_until_a_send_from_another_thread() {
        let (tx, rx) = bounded(1);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            tx.send(42).unwrap();
        });
        assert_eq!(rx.recv(), Ok(42));
    }

    #[test]
    fn dropping_all_senders_disconnects_after_draining() {
        let (tx, rx) = bounded(4);
        tx.try_send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7), "queued messages survive disconnect");
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn dropping_the_receiver_fails_sends() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert_eq!(tx.try_send(1), Err(TrySendError::Disconnected(1)));
        assert_eq!(tx.send(2), Err(SendError(2)));
    }

    #[test]
    fn recv_timeout_expires_on_an_empty_channel() {
        let (tx, rx) = bounded::<u32>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.try_send(5).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn cloned_handles_share_the_queue() {
        let (tx, rx) = bounded(8);
        let tx2 = tx.clone();
        let rx2 = rx.clone();
        tx.try_send(1).unwrap();
        tx2.try_send(2).unwrap();
        assert_eq!(rx2.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        // One sender dropped is not a disconnect while the clone lives.
        drop(tx);
        tx2.try_send(3).unwrap();
        assert_eq!(rx.recv(), Ok(3));
    }
}
