//! Offline stand-in for `crossbeam`: the scoped-thread API the runner
//! uses, implemented over `std::thread::scope` (available since Rust
//! 1.63, so the crossbeam implementation is no longer load-bearing),
//! plus the bounded-[`channel`] subset the campaign server's job queue
//! uses, implemented over `std::sync` primitives.
//!
//! As in crossbeam, `scope` returns `Err` (instead of unwinding) when a
//! child thread panicked, and spawn closures receive a scope handle so
//! they could spawn further threads.

pub mod channel;

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A handle for spawning threads tied to the enclosing [`scope`] call.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread that joins before the scope ends. The closure
    /// receives the scope handle (crossbeam's signature), letting workers
    /// spawn nested threads.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }))
    }
}

/// Run `f` with a scope in which borrowed-data threads can be spawned;
/// all spawned threads are joined before this returns. Returns `Err` with
/// the panic payload if any child thread panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: FnOnce(&Scope<'_, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn threads_share_borrowed_state() {
        let counter = AtomicUsize::new(0);
        let out = scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
            7
        })
        .expect("no panics");
        assert_eq!(out, 7);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn child_panic_becomes_err() {
        let r = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
