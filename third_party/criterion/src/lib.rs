//! Offline stand-in for `criterion`: the group/bench-function API used by
//! the microbenchmarks, backed by a simple wall-clock timer.
//!
//! Each bench runs its closure for a short, bounded measurement window
//! and prints mean time per iteration (plus throughput when declared).
//! There is no statistical analysis, warm-up tuning, or HTML report —
//! the numbers are order-of-magnitude honest and the API is compatible.

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared units of work per iteration, for derived throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: 100,
        }
    }

    /// Run a standalone benchmark (group-less).
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, None, 100, f);
        self
    }
}

/// A named set of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Declare per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Hint for how many samples to take (bounds the measurement window).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measure `f` and print `group/id: time per iteration`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.throughput, self.sample_size, f);
        self
    }

    /// End the group (upstream flushes reports here; nothing to flush).
    pub fn finish(self) {}
}

fn run_one<F>(name: &str, throughput: Option<Throughput>, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
        budget: budget(sample_size),
    };
    f(&mut b);
    if b.iters == 0 {
        println!("{name:<40} (no iterations)");
        return;
    }
    let ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
    let mut line = format!("{name:<40} {:>12} / iter   ({} iters)", fmt_ns(ns), b.iters);
    match throughput {
        Some(Throughput::Elements(n)) if ns > 0.0 => {
            let rate = n as f64 * 1e9 / ns;
            line.push_str(&format!("   {:.2} Melem/s", rate / 1e6));
        }
        Some(Throughput::Bytes(n)) if ns > 0.0 => {
            let rate = n as f64 * 1e9 / ns;
            line.push_str(&format!("   {:.2} MiB/s", rate / (1024.0 * 1024.0)));
        }
        _ => {}
    }
    println!("{line}");
}

/// Measurement window: generous for default groups, tight for benches
/// that opted into a small sample size (those iterate slow full runs).
fn budget(sample_size: usize) -> Duration {
    if sample_size >= 100 {
        Duration::from_millis(200)
    } else {
        Duration::from_millis(50)
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Passed to each benchmark closure; `iter` performs the measurement.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    budget: Duration,
}

impl Bencher {
    /// Time repeated calls of `routine` until the measurement budget is
    /// spent (always at least one call).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        loop {
            black_box(routine());
            self.iters += 1;
            self.elapsed = start.elapsed();
            if self.elapsed >= self.budget {
                break;
            }
        }
    }
}

/// Collect benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; none apply.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_at_least_once() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(1));
        g.sample_size(10);
        let mut calls = 0u64;
        g.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                std::thread::sleep(std::time::Duration::from_millis(60));
            })
        });
        g.finish();
        assert!(calls >= 1);
    }
}
