//! Offline stand-in for the `bytes` crate: the little-endian cursor
//! traits the ISA encoder/decoder and binary loader use, implemented for
//! `&[u8]` (reading) and `Vec<u8>` (writing).
//!
//! Semantics match upstream for the in-bounds cases this workspace hits;
//! like upstream, the `get_*`/`advance` methods panic when the buffer is
//! too short (callers bounds-check with [`Buf::remaining`] first).

/// A readable byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skip `cnt` bytes. Panics if fewer remain.
    fn advance(&mut self, cnt: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take_array())
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_array())
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_array())
    }

    /// Read a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.take_array())
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_array())
    }

    /// Read `N` bytes into an array (helper for the `get_*` defaults).
    #[doc(hidden)]
    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        let mut out = [0u8; N];
        out.copy_from_slice(&self.chunk()[..N]);
        self.advance(N);
        out
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

impl<T: Buf + ?Sized> Buf for &mut T {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }

    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt)
    }
}

/// A writable byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        for _ in 0..cnt {
            self.put_u8(val);
        }
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<T: BufMut + ?Sized> BufMut for &mut T {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut v: Vec<u8> = Vec::new();
        v.put_u8(0xAB);
        v.put_u16_le(0x1234);
        v.put_u32_le(0xDEADBEEF);
        v.put_u64_le(0x0102030405060708);
        v.put_i64_le(-42);
        v.put_f64_le(1.5);
        v.put_bytes(0, 3);
        v.put_slice(b"xy");

        let mut b: &[u8] = &v;
        assert_eq!(b.get_u8(), 0xAB);
        assert_eq!(b.get_u16_le(), 0x1234);
        assert_eq!(b.get_u32_le(), 0xDEADBEEF);
        assert_eq!(b.get_u64_le(), 0x0102030405060708);
        assert_eq!(b.get_i64_le(), -42);
        assert_eq!(b.get_f64_le(), 1.5);
        assert_eq!(b.remaining(), 5);
        b.advance(3);
        assert_eq!(b.chunk(), b"xy");
    }

    #[test]
    fn works_through_mut_reference() {
        let data = [1u8, 0, 2, 0];
        let mut cursor: &[u8] = &data;
        fn read_two(buf: &mut impl Buf) -> (u16, u16) {
            (buf.get_u16_le(), buf.get_u16_le())
        }
        assert_eq!(read_two(&mut cursor), (1, 2));
        assert_eq!(cursor.remaining(), 0);
    }
}
