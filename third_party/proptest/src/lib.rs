//! Offline stand-in for `proptest`, covering the surface this workspace's
//! property tests use: `proptest!` with optional `proptest_config`,
//! `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`, `any`, `Just`,
//! `prop_map`, tuple strategies, `collection::vec`, and `option::of`.
//!
//! It is a plain random-input harness: each test function runs its body
//! over `cases` inputs drawn from a deterministic generator, and a failed
//! `prop_assert*` reports the case. Upstream's shrinking and persistence
//! are intentionally absent — failures print the (reproducible) inputs
//! via the assertion message instead of a minimized counterexample.

pub mod test_runner {
    use std::fmt;

    /// Deterministic generator driving every strategy (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The fixed-seed generator used by the `proptest!` harness, so
        /// every run explores the same input sequence.
        pub fn deterministic() -> TestRng {
            TestRng {
                state: 0x005E_A2D1_0AD5_C0DE,
            }
        }

        /// A generator with a chosen seed.
        pub fn seed_from_u64(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform sample below `bound` (`bound > 0`).
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }

    /// How many cases each property runs.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random inputs per test function.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` inputs per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property case (produced by the `prop_assert*` macros).
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// A failure carrying `msg`.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError { msg: msg.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// A strategy applying `f` to every generated value.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erase, for heterogeneous unions (`prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.sample(rng)))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `strategy.prop_map(f)`.
    #[derive(Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Weighted choice among boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// A union of `(weight, strategy)` arms; weights must not all be 0.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
            let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs a positive total weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.sample(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights sum to total")
        }
    }

    /// Types with a canonical full-range strategy (`any::<T>()`).
    pub trait Arbitrary {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Raw bit patterns: covers subnormals, infinities, and NaNs,
            // like upstream's special-value generation.
            f64::from_bits(rng.next_u64())
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($S:ident . $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A `Vec` of values from `element`, with uniform length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `None` about a quarter of the time, otherwise `Some` of `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

pub use strategy::{any, BoxedStrategy, Just, Strategy};

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@config ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            @config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (@config ($cfg:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic();
                for case in 0..cfg.cases {
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!("property failed on case {}/{}: {}", case + 1, cfg.cases, e);
                    }
                }
            }
        )*
    };
}

/// Assert inside a `proptest!` body; failure fails the case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?} == {:?}`", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?} == {:?}`: {}",
                    left,
                    right,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?} != {:?}`", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?} != {:?}`: {}",
                    left,
                    right,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Weighted (`w => strategy`) or unweighted choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((($weight) as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Pick {
        A,
        B(bool),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs_in_bounds(
            xs in crate::collection::vec(3u64..10, 1..20),
            o in crate::option::of(0u8..4),
            p in prop_oneof![2 => Just(Pick::A), 1 => any::<bool>().prop_map(Pick::B)],
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            for x in xs {
                prop_assert!((3..10).contains(&x), "x = {}", x);
            }
            if let Some(v) = o {
                prop_assert!(v < 4);
            }
            prop_assert_ne!(p.clone(), Pick::B(!matches!(p, Pick::B(b) if b)));
        }

        #[test]
        fn tuples_sample_componentwise((a, b, c) in (0u8..2, 5i64..6, any::<bool>())) {
            prop_assert!(a < 2);
            prop_assert_eq!(b, 5);
            let _ = c;
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics() {
        proptest! {
            fn inner(x in 0u8..4) {
                prop_assert!(x > 200, "x was {}", x);
            }
        }
        inner();
    }
}
