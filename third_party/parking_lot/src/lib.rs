//! Offline stand-in for `parking_lot`: wrappers over `std::sync` that
//! reproduce the two API differences this workspace relies on — `lock()`
//! returns the guard directly (no poisoning `Result`), and `into_inner()`
//! returns the value directly. A poisoned std lock is recovered rather
//! than propagated, matching parking_lot's no-poisoning semantics.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose guard methods never return poison errors.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// A new mutex holding `t`.
    pub fn new(t: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(t))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is held.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The inner value, via exclusive borrow (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader–writer lock whose guard methods never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// A new lock holding `t`.
    pub fn new(t: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(t))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Block until a shared read guard is held.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Block until the exclusive write guard is held.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guard_and_into_inner() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5u32);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }
}
