//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! The workloads only need a deterministic, seedable generator with
//! `random_range` / `random`; [`StdRng`] here is SplitMix64 rather than
//! upstream's ChaCha12 — different streams for the same seed, but the
//! workspace never depends on a specific stream, only on determinism.

/// Raw generator: a source of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Deterministically build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open, as in `0..n`).
    ///
    /// The output type parameter comes first (as upstream) so the element
    /// type can be inferred from the assignment context.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A sample of `T` from its full/standard distribution.
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can be sampled uniformly for element type `T`.
pub trait SampleRange<T> {
    /// Draw one sample. Panics on an empty range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                // Modulo bias is negligible for the small spans the
                // workloads use (all far below 2^32).
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types samplable by [`Rng::random`].
pub trait StandardSample {
    /// Draw one sample.
    fn sample_from<R: RngCore>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample_from<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn sample_from<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_from<R: RngCore>(rng: &mut R) -> f64 {
        // Uniform in [0, 1): 53 mantissa bits.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The default generator: SplitMix64. Deterministic per seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

pub use rngs::StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = r.random_range(3u8..64);
            assert!((3..64).contains(&x));
            let y = r.random_range(0usize..17);
            assert!(y < 17);
            let z = r.random_range(-5i64..5);
            assert!((-5..5).contains(&z));
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.random_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
