//! Offline stand-in for `serde`, grown for this workspace.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the small slice of serde it actually uses: `#[derive(Serialize,
//! Deserialize)]` on plain structs (named, newtype) and unit-variant
//! enums, driven through a self-describing [`Value`] model with a JSON
//! backend in [`json`] (covering what `serde_json` would otherwise
//! provide for the telemetry export).
//!
//! The data model is miniserde-shaped: `Serialize` renders a type into a
//! [`Value`] tree, `Deserialize` rebuilds the type from one. Field order
//! is preserved; unknown fields are ignored on the way in, which is what
//! gives the `--stats-json` schema its forward compatibility.

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

use std::fmt;

/// A self-describing serialized value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null` (also `Option::None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer (only produced for negative values or `i*` types).
    I64(i64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered field map.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a field of an object by name.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::new(format!("missing field `{name}`"))),
            other => Err(Error::new(format!(
                "expected object with field `{name}`, got {}",
                other.kind()
            ))),
        }
    }

    /// Short kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error carrying `msg`.
    pub fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Render `self` into the [`Value`] data model.
pub trait Serialize {
    /// The serialized form.
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`].
pub trait Deserialize: Sized {
    /// Parse the value, rejecting shape mismatches.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitive impls ----------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    _ => return Err(Error::new(format!(
                        "expected unsigned integer, got {}", v.kind()))),
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::new(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) => i64::try_from(n).map_err(|_| {
                        Error::new(format!("{n} out of range for i64"))
                    })?,
                    _ => return Err(Error::new(format!(
                        "expected integer, got {}", v.kind()))),
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::new(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::F64(x) => Ok(x),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            _ => Err(Error::new(format!("expected number, got {}", v.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(Error::new(format!("expected bool, got {}", v.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::new(format!("expected string, got {}", v.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::new(format!("expected array, got {}", v.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            _ => Err(Error::new("expected 2-element array")),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            Option::<u32>::from_value(&None::<u32>.to_value()).unwrap(),
            None
        );
        let v: Vec<u8> = vec![1, 2, 3];
        assert_eq!(Vec::<u8>::from_value(&v.to_value()).unwrap(), v);
    }

    #[test]
    fn field_lookup_reports_missing() {
        let obj = Value::Object(vec![("a".into(), Value::U64(1))]);
        assert!(obj.field("a").is_ok());
        assert!(obj.field("b").is_err());
    }
}
