//! JSON rendering and parsing for the [`Value`](crate::Value) model — the
//! workspace's equivalent of `serde_json`, used by the `--stats-json` and
//! `--trace-file` telemetry exports.

use crate::{Deserialize, Error, Serialize, Value};
use std::fmt::Write;

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(t: &T) -> String {
    let mut out = String::new();
    write_value(&mut out, &t.to_value(), None, 0);
    out
}

/// Serialize to human-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(t: &T) -> String {
    let mut out = String::new();
    write_value(&mut out, &t.to_value(), Some(2), 0);
    out.push('\n');
    out
}

/// Deserialize a type from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    T::from_value(&parse(s)?)
}

/// Parse JSON text into a [`Value`].
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` is the shortest representation that round-trips.
                let _ = write!(out, "{x:?}");
            } else {
                // JSON has no NaN/Infinity; null is the conventional fallback.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(out, items.iter(), indent, depth, ('[', ']'), write_value);
        }
        Value::Object(fields) => {
            write_seq(
                out,
                fields.iter(),
                indent,
                depth,
                ('{', '}'),
                |o, (k, val), ind, d| {
                    write_string(o, k);
                    o.push(':');
                    if ind.is_some() {
                        o.push(' ');
                    }
                    write_value(o, val, ind, d);
                },
            );
        }
    }
}

fn write_seq<I, T>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(&mut String, T, Option<usize>, usize),
) where
    I: ExactSizeIterator<Item = T>,
{
    out.push(brackets.0);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * depth));
        }
    }
    out.push(brackets.1);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["0", "42", "-7", "0.5", "true", "false", "null", "\"hi\""] {
            let v = parse(text).unwrap();
            assert_eq!(to_string(&v), text, "{text}");
        }
    }

    #[test]
    fn nested_round_trip() {
        let text = r#"{"a":[1,2,{"b":null}],"c":"x\ny","d":-3.25}"#;
        let v = parse(text).unwrap();
        assert_eq!(to_string(&v), text);
    }

    #[test]
    fn big_u64_round_trips_exactly() {
        let n = u64::MAX - 1;
        let v = parse(&n.to_string()).unwrap();
        assert_eq!(v, Value::U64(n));
    }

    #[test]
    fn pretty_parses_back() {
        let v = parse(r#"{"a":[1,2],"b":{"c":true}}"#).unwrap();
        let pretty = to_string_pretty(&v);
        assert!(pretty.contains("\n  "));
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
