//! A per-cycle view of the SPEAR front end in action: steps the simulator
//! cycle by cycle over a small gather kernel and renders the IFQ depth,
//! both RUU occupancies, the trigger state machine, and the committed
//! instruction count — watch an episode trigger, drain, copy live-ins,
//! extract, and retire.
//!
//! Run with: `cargo run --release --example pipeline_view [cycles]`

use spear_cpu::{Core, CoreConfig};
use spear_isa::asm::Asm;
use spear_isa::reg::*;
use spear_repro::compiler::{CompilerConfig, SpearCompiler};

fn gather() -> spear_isa::Program {
    let mut a = Asm::new();
    let idx: Vec<u64> = (0..4000u64).map(|i| (i * 7919) % 4096).collect();
    let ib = a.alloc_u64("idx", &idx);
    let xb = a.reserve("x", 4096 * 4096);
    a.li(R1, ib as i64);
    a.li(R2, xb as i64);
    a.li(R3, 4000);
    a.label("loop");
    a.ld(R5, R1, 0);
    a.slli(R6, R5, 12);
    a.add(R6, R2, R6);
    a.ld(R7, R6, 0); // the d-load
    a.add(R4, R4, R7);
    a.addi(R1, R1, 8);
    a.addi(R3, R3, -1);
    a.bne(R3, R0, "loop");
    a.halt();
    a.finish().unwrap()
}

fn main() {
    let cycles: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let program = gather();
    let (binary, _) = SpearCompiler::new(CompilerConfig::default())
        .compile(&program)
        .expect("compile");
    let mut core = Core::new(&binary, CoreConfig::spear(128));
    core.enable_trace(64);

    println!(
        "{:>7} {:>5} {:>5} {:>5} {:>12} {:>10}  (bar = IFQ occupancy)",
        "cycle", "IFQ", "RUU", "pRUU", "mode", "committed"
    );
    let mut last_mode = String::new();
    for _ in 0..cycles {
        if core.halted() {
            break;
        }
        core.step_cycle().expect("step");
        let mode = core.mode_name();
        // Print on mode changes and every 16 cycles.
        if mode != last_mode || core.cycle().is_multiple_of(16) {
            let bar = "#".repeat(core.ifq_len() / 4);
            println!(
                "{:>7} {:>5} {:>5} {:>5} {:>12} {:>10}  {}",
                core.cycle(),
                core.ifq_len(),
                core.ruu_len(),
                core.pthread_ruu_len(),
                mode,
                core.stats().committed,
                bar
            );
            last_mode = mode;
        }
    }
    println!("\nepisode event trace:");
    if let Some(t) = core.trace() {
        for e in t.events() {
            println!("  {e}");
        }
    }
}
