//! Quickstart: the paper's Figure 1 example, end to end.
//!
//! Figure 1 illustrates speculative pre-execution on the innermost loop of
//! Lawrence Livermore Loop 4 (banded linear equations): the load of `y[j]`
//! is the delinquent load; its backward slice computes the access address;
//! the p-thread is the slice plus the d-load.
//!
//! This example builds that loop in the SPEAR ISA, runs the full SPEAR
//! post-compiler over it (CFG → profile → slice → attach), shows the
//! constructed p-thread, and then simulates the baseline superscalar
//! against SPEAR-128 to show the speedup.
//!
//! Run with: `cargo run --release --example quickstart`

use spear_cpu::{Core, CoreConfig};
use spear_isa::asm::Asm;
use spear_isa::reg::*;
use spear_isa::{Program, SpearBinary};
use spear_repro::compiler::{CompilerConfig, SpearCompiler};

/// The innermost loop of LL4: `temp -= xz[lw] * y[j]` with `j` striding
/// by 5 and `lw` sequential. `y` is large and the stride defeats the
/// caches, so `y[j]` is the delinquent load.
fn ll4(rows: i64, n: i64) -> Program {
    let mut a = Asm::new();
    let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
    let xz: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64)).collect();
    let y_b = a.alloc_f64("y", &y);
    let xz_b = a.alloc_f64("xz", &xz);
    let out = a.reserve("x", (rows as u64) * 8);
    a.li(R20, rows);
    a.li(R21, out as i64);
    a.li(R9, 0); // row counter (drives lw's starting point)
    a.label("outer");
    a.li(R1, y_b as i64); // &y[4]... start of the strided walk
    a.mul(R2, R9, R20);
    a.slli(R2, R2, 3);
    a.li(R3, xz_b as i64);
    a.add(R3, R3, R2); // &xz[lw0]
    a.li(R4, n / 8); // inner trip count
    a.fcvt_d_l(F1, R0); // temp = 0.0
    a.label("inner");
    a.fld(F2, R1, 0); // THE d-load: y[j], stride 5 doublewords
    a.fld(F3, R3, 0); // xz[lw], sequential
    a.fmul(F4, F2, F3);
    a.fsub(F1, F1, F4); // temp -= xz[lw] * y[j]
    a.addi(R1, R1, 40); // j += 5 (slice: the address chain)
    a.addi(R3, R3, 8); // lw += 1
    a.addi(R4, R4, -1);
    a.bne(R4, R0, "inner");
    a.fsd(F1, R21, 0); // x[k] = f(temp)
    a.addi(R21, R21, 8);
    a.addi(R9, R9, 1);
    a.blt(R9, R20, "outer");
    a.halt();
    a.finish().unwrap()
}

fn main() {
    // Profile on a smaller input than we evaluate — the paper's
    // methodology (§4.1).
    let profile_program = ll4(16, 1 << 16);
    let eval_program = ll4(16, 1 << 17);

    println!("== SPEAR compiler on the Figure 1 (LL4) loop ==\n");
    let compiler = SpearCompiler::new(CompilerConfig::default());
    let (binary, report) = compiler.compile(&profile_program).expect("compile");
    println!(
        "profiled {} instructions, {} L1D misses",
        report.profiled_insts, report.total_misses
    );
    for e in &binary.table.entries {
        println!(
            "\np-thread for d-load @{} ({} profiled misses):",
            e.dload_pc, e.profiled_misses
        );
        for &pc in &e.members {
            let marker = if pc == e.dload_pc { "  <-- d-load" } else { "" };
            println!(
                "    {:>4}  {}{}",
                pc, binary.program.insts[pc as usize], marker
            );
        }
        let live: Vec<String> = e.live_ins.iter().map(|r| r.to_string()).collect();
        println!("  live-ins: {}", live.join(", "));
        println!("  region d-cycle: {:.1}", e.region.dcycle);
    }

    // Re-bind the table onto the evaluation-input image and simulate.
    let eval_spear = SpearCompiler::attach(eval_program.clone(), binary.table.clone());
    let eval_plain = SpearBinary::plain(eval_program);

    println!("\n== simulation ==\n");
    let mut base = Core::new(&eval_plain, CoreConfig::baseline());
    let b = base.run(u64::MAX, u64::MAX).expect("baseline run");
    println!(
        "baseline superscalar: {:>9} cycles, IPC {:.4}, {} L1D misses",
        b.stats.cycles,
        b.stats.ipc(),
        b.stats.l1d_main_misses
    );
    for ifq in [128usize, 256] {
        let mut spear = Core::new(&eval_spear, CoreConfig::spear(ifq));
        let s = spear.run(u64::MAX, u64::MAX).expect("SPEAR run");
        println!(
            "SPEAR-{ifq:<3}:           {:>9} cycles, IPC {:.4}, {} L1D misses, {} prefetches  ({:+.1}%)",
            s.stats.cycles,
            s.stats.ipc(),
            s.stats.l1d_main_misses,
            s.stats.pthread_loads,
            (s.stats.ipc() / b.stats.ipc() - 1.0) * 100.0
        );
    }
}
