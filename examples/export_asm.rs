//! Export the 15 benchmark kernels as SPEAR assembly text — the textual
//! face of the toolchain. Every exported file re-assembles (via
//! `spear_isa::parse_asm` or the `spearc` CLI) into a bit-identical
//! program, which this example verifies before writing.
//!
//! Run with: `cargo run --release --example export_asm [out_dir]`
//! (default out_dir: target/asm)

use spear_isa::{emit_asm, parse_asm};
use std::path::PathBuf;

fn main() {
    let out_dir: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/asm".to_string())
        .into();
    std::fs::create_dir_all(&out_dir).expect("create output directory");

    for w in spear_workloads::all() {
        let program = w.profile_program();
        let text = emit_asm(&program);

        // Verify the round trip before writing anything.
        let back = parse_asm(&text)
            .unwrap_or_else(|e| panic!("{}: emitted text failed to re-assemble: {e}", w.name));
        assert_eq!(
            back.insts, program.insts,
            "{}: instruction mismatch",
            w.name
        );
        assert_eq!(
            back.data.to_bytes(),
            program.data.to_bytes(),
            "{}: data mismatch",
            w.name
        );

        let path = out_dir.join(format!("{}.s", w.name));
        std::fs::write(&path, &text).expect("write");
        println!(
            "{:<28} {:>6} instructions, {:>9} data bytes",
            path.display(),
            program.len(),
            program.data.size
        );
    }
    println!("\nre-assemble any of them with:");
    println!(
        "  cargo run --release -p spear --bin spearc -- {}/mcf.s",
        out_dir.display()
    );
}
