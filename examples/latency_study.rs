//! Latency-tolerance study (the Figure 9 scenario) on a single workload.
//!
//! Sweeps main-memory latency from 40 to 200 cycles (L2 at one tenth, as
//! in the paper) and shows how much performance each machine model loses —
//! the paper's headline: SPEAR degrades by ~39% where the plain
//! superscalar loses ~48.5%.
//!
//! Run with: `cargo run --release --example latency_study [workload]`
//! (default: mcf; any Table 1 abbreviation works).

use spear_repro::spear::experiments::FIG9_LATENCIES;
use spear_repro::spear::runner::{compile_workload, run_one};
use spear_repro::spear::Machine;
use spear_workloads::by_name;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "mcf".to_string());
    let w = by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown workload `{name}`; try one of:");
        for w in spear_workloads::all() {
            eprintln!("  {}", w.name);
        }
        std::process::exit(1);
    });

    println!("latency sweep for `{name}` (memory 40..200 cycles, L2 = memory/10)\n");
    let (table, _) = compile_workload(&w);

    println!(
        "  {:<14} {:>8} {:>8} {:>8} {:>8} {:>8}   {:>6}",
        "machine", 40, 80, 120, 160, 200, "loss"
    );
    for machine in Machine::FIG6 {
        let ipcs: Vec<f64> = FIG9_LATENCIES
            .iter()
            .map(|&mem| {
                run_one(
                    &w,
                    &table,
                    machine,
                    Some(spear_mem::LatencyConfig::sweep_point(mem)),
                )
                .ipc()
            })
            .collect();
        print!("  {:<14}", machine.name());
        for ipc in &ipcs {
            print!(" {ipc:>8.4}");
        }
        println!("   {:>5.1}%", (1.0 - ipcs[4] / ipcs[0]) * 100.0);
    }
    println!("\n(`loss` = IPC drop from the 40-cycle to the 200-cycle configuration;");
    println!(" paper averages: superscalar 48.5%, SPEAR-128 39.7%, SPEAR-256 38.4%)");
}
