//! A tour of the SPEAR post-compiler's four modules (Figure 4) on any
//! benchmark: the CFG drawing tool, the profiler, the hybrid slicer, and
//! the attacher — with their intermediate artifacts printed.
//!
//! Run with: `cargo run --release --example compiler_tour [workload]`
//! (default: mcf).

use spear_repro::compiler::{profile, Cfg, CompilerConfig, Dominators, LoopForest, SpearCompiler};
use spear_workloads::by_name;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "mcf".to_string());
    let w = by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown workload `{name}`");
        std::process::exit(1);
    });
    let program = w.profile_program();

    // -------- module ①: CFG drawing tool --------------------------------
    let cfg = Cfg::build(&program);
    let dom = Dominators::compute(&cfg);
    let forest = LoopForest::compute(&cfg, &dom);
    println!("== module 1: control-flow graph");
    println!(
        "  {} instructions in {} basic blocks",
        program.len(),
        cfg.len()
    );
    for (i, b) in cfg.blocks.iter().enumerate() {
        println!(
            "  B{i}: pc {}..{}  succs {:?}{}",
            b.start,
            b.end,
            b.succs,
            if forest.innermost[i].is_some() {
                "  (in loop)"
            } else {
                ""
            }
        );
    }
    println!("  {} natural loops:", forest.loops.len());
    for (i, l) in forest.loops.iter().enumerate() {
        println!(
            "    loop {i}: header B{}, {} blocks, depth {}",
            l.header,
            l.blocks.len(),
            l.depth
        );
    }

    // -------- module ②: profiling tool ----------------------------------
    let prof = profile(
        &program,
        &cfg,
        &forest,
        spear_mem::HierConfig::paper(),
        50_000_000,
    )
    .expect("profiling");
    println!("\n== module 2: profile ({} instructions)", prof.insts);
    println!("  total L1D misses: {}", prof.total_misses);
    println!("  hottest loads:");
    for (pc, misses) in prof.ranked_loads().into_iter().take(5) {
        println!(
            "    pc {:>4}  {:<28} {:>8} misses / {:>8} executions",
            pc,
            program.insts[pc as usize].to_string(),
            misses,
            prof.load_count.get(&pc).copied().unwrap_or(0)
        );
    }
    for (i, lp) in prof.loops.iter().enumerate() {
        if lp.iterations > 0 {
            println!(
                "    loop {i}: {} iterations, d-cycle {:.1}",
                lp.iterations,
                lp.dcycle()
            );
        }
    }

    // -------- modules ③+④: slicer and attacher -------------------------
    let (binary, report) = SpearCompiler::new(CompilerConfig::default())
        .compile(&program)
        .expect("compile");
    println!("\n== modules 3+4: p-threads attached to the binary");
    for e in &binary.table.entries {
        println!(
            "  d-load @{}: {}-instruction slice, live-ins {:?}, region d-cycle {:.1}",
            e.dload_pc,
            e.members.len(),
            e.live_ins,
            e.region.dcycle
        );
        for &pc in &e.members {
            let mark = if pc == e.dload_pc { " <== d-load" } else { "" };
            println!("      {:>4}  {}{}", pc, program.insts[pc as usize], mark);
        }
    }
    for (pc, reason) in &report.skipped {
        println!("  candidate @{pc} skipped: {reason:?}");
    }
    binary.validate().expect("attached binary is consistent");
    println!(
        "\nbinary validated: {} p-threads attached.",
        binary.table.len()
    );
}
