; histogram.s — a small irregular-access kernel in SPEAR assembly.
;
; Builds a 64-bucket histogram of pseudo-random values, reading the
; values through a large indirection table so the bucket loads miss.
; Compile and run it with:
;
;   cargo run --release -p spear --bin spearc   -- examples/asm/histogram.s -o histogram.spear
;   cargo run --release -p spear --bin spear-sim -- histogram.spear -m spear-128

.data    seeds u64 2654435761, 40503, 2246822519, 3266489917
.reserve table 2097152          ; 2 MiB indirection table (zeroed)
.reserve hist  512              ; 64 × u64 buckets
.reserve result 8

    li   r1, table
    li   r2, hist
    li   r3, 20000              ; iterations
    li   r5, 88172645463325252  ; xorshift state
loop:
    ; xorshift64 step (the whole address chain is sliceable)
    slli r6, r5, 13
    xor  r5, r5, r6
    srli r6, r5, 7
    xor  r5, r5, r6
    slli r6, r5, 17
    xor  r5, r5, r6
    ; random table cell → bucket index
    srli r6, r5, 17
    andi r6, r6, 2097144        ; byte offset, 8-aligned
    add  r6, r1, r6
    ld   r7, 0(r6)              ; the delinquent load
    add  r7, r7, r5
    andi r7, r7, 63             ; bucket
    slli r7, r7, 3
    add  r7, r2, r7
    ld   r8, 0(r7)              ; bucket read
    addi r8, r8, 1
    sd   r8, 0(r7)              ; bucket write
    addi r3, r3, -1
    bne  r3, r0, loop
    ; checksum the first bucket into result
    ld   r9, 0(r2)
    li   r10, result
    sd   r9, 0(r10)
    halt
