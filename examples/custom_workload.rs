//! Bring your own kernel: write a workload in the SPEAR ISA, let the
//! post-compiler find its delinquent loads, and measure what the SPEAR
//! front end buys you — the workflow a downstream user of this library
//! follows for their own code.
//!
//! The kernel here is a B-tree-ish index lookup: keys come from a
//! sequential query array (prefetchable), each key probes a large sorted
//! node array with a 3-level computed descent. Exactly the kind of
//! irregular-but-computable access pattern SPEAR targets.
//!
//! Run with: `cargo run --release --example custom_workload`

use spear_cpu::{Core, CoreConfig};
use spear_isa::asm::Asm;
use spear_isa::reg::*;
use spear_isa::{Program, SpearBinary};
use spear_repro::compiler::{CompilerConfig, SpearCompiler};

fn index_lookup(queries: usize, seed: u64) -> Program {
    const LEAVES: i64 = 1 << 17; // 1 MiB leaf array
    let mut a = Asm::new();
    // Query stream: pseudo-random keys, read sequentially.
    let keys: Vec<u64> = (0..queries as u64)
        .map(|i| (i.wrapping_mul(0x9E3779B97F4A7C15) ^ seed) % (LEAVES as u64))
        .collect();
    let leaves: Vec<u64> = (0..LEAVES as u64).map(|i| i * 2 + 1).collect();
    let keys_b = a.alloc_u64("keys", &keys);
    let leaves_b = a.alloc_u64("leaves", &leaves);
    let result = a.reserve("result", 8);
    a.li(R1, keys_b as i64); // query cursor
    a.li(R2, leaves_b as i64);
    a.li(R3, queries as i64);
    a.li(R4, 0); // acc
    a.label("query");
    a.ld(R5, R1, 0); // key (sequential — the slice's anchor)
                     // Three-level descent: probe at key/64, key/8, key (each level a
                     // different region of the leaf array → three dependent-but-computable
                     // loads per query).
    for shift in [6i64, 3, 0] {
        a.srli(R6, R5, shift as u64 as i64);
        a.slli(R6, R6, 3);
        a.add(R6, R2, R6);
        a.ld(R7, R6, 0); // probe (random → misses)
        a.add(R4, R4, R7);
    }
    a.addi(R1, R1, 8); // next query
    a.addi(R3, R3, -1);
    a.bne(R3, R0, "query");
    a.li(R6, result as i64);
    a.sd(R4, R6, 0);
    a.halt();
    a.finish().unwrap()
}

fn main() {
    // 1. Build the kernel twice: a profiling input and an evaluation input.
    let profile_program = index_lookup(4_000, 0xAA);
    let eval_program = index_lookup(12_000, 0x55);

    // 2. Run the SPEAR post-compiler on the profiling build.
    let (binary, report) = SpearCompiler::new(CompilerConfig::default())
        .compile(&profile_program)
        .expect("compile");
    println!(
        "SPEAR compiler found {} delinquent load(s):",
        report.built.len()
    );
    for e in &report.built {
        println!(
            "  d-load @{}: slice {} insts, {} live-ins, {} profiled misses",
            e.dload_pc, e.slice_len, e.live_ins, e.misses
        );
    }

    // 3. Re-bind the p-thread table onto the evaluation build.
    let spear_binary = SpearCompiler::attach(eval_program.clone(), binary.table.clone());
    let plain_binary = SpearBinary::plain(eval_program);

    // 4. Measure.
    println!(
        "\n{:<14} {:>10} {:>8} {:>10}",
        "machine", "cycles", "IPC", "L1D misses"
    );
    let mut results = Vec::new();
    for (label, bin, cfg) in [
        ("superscalar", &plain_binary, CoreConfig::baseline()),
        ("SPEAR-128", &spear_binary, CoreConfig::spear(128)),
        ("SPEAR-256", &spear_binary, CoreConfig::spear(256)),
    ] {
        let mut core = Core::new(bin, cfg);
        let res = core.run(u64::MAX, u64::MAX).expect("run");
        println!(
            "{:<14} {:>10} {:>8.4} {:>10}",
            label,
            res.stats.cycles,
            res.stats.ipc(),
            res.stats.l1d_main_misses
        );
        results.push(res.stats.ipc());
    }
    println!(
        "\nSPEAR-128 speedup: {:+.1}%   SPEAR-256 speedup: {:+.1}%",
        (results[1] / results[0] - 1.0) * 100.0,
        (results[2] / results[0] - 1.0) * 100.0
    );
}
